// Package textsim implements the syntactic string-similarity measures WYM
// uses as baselines and as classifier features: Jaro, Jaro–Winkler,
// normalized Levenshtein, token Jaccard and token-set cosine.
//
// The paper's ablation study (Table 4) builds decision units from the
// Jaro–Winkler distance instead of embeddings; the baseline matchers in
// internal/baselines consume these measures as attribute similarities.
package textsim

import (
	"math"
	"strconv"
	"strings"
)

// Jaro returns the Jaro similarity of a and b in [0, 1]. Identical strings
// score 1; strings with no matching characters score 0. Empty strings are
// similar to each other (1) and dissimilar to everything else (0).
func Jaro(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	var matches int
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || a[i] != b[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between the sequences of matched characters.
	var transpositions int
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity of a and b with the
// standard prefix scale of 0.1 and a maximum common-prefix bonus length of
// 4, as in Winkler's original formulation used by the paper.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Levenshtein returns the edit distance between a and b.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// LevenshteinSim returns 1 - Levenshtein(a,b)/max(len(a),len(b)), a
// similarity in [0, 1]. Two empty strings are fully similar.
func LevenshteinSim(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(max(len(a), len(b)))
}

// Jaccard returns the Jaccard similarity of the two token multisets,
// computed on the underlying sets. Two empty sets are fully similar.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := toSet(a)
	setB := toSet(b)
	var inter int
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Overlap returns the overlap coefficient |A∩B| / min(|A|,|B|) of the two
// token sets; 0 if either is empty.
func Overlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := toSet(a)
	setB := toSet(b)
	var inter int
	for t := range setA {
		if setB[t] {
			inter++
		}
	}
	return float64(inter) / float64(min(len(setA), len(setB)))
}

// TokenCosine returns the cosine similarity between the term-frequency
// vectors of the two token lists.
func TokenCosine(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	fa := counts(a)
	fb := counts(b)
	var dot, na, nb float64
	for t, ca := range fa {
		na += float64(ca * ca)
		if cb, ok := fb[t]; ok {
			dot += float64(ca * cb)
		}
	}
	for _, cb := range fb {
		nb += float64(cb * cb)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// MongeElkan returns the Monge–Elkan similarity of two token lists under
// the Jaro–Winkler base measure: the mean, over tokens of a, of the best
// Jaro–Winkler match in b. It is asymmetric by construction; callers that
// need symmetry should average both directions.
func MongeElkan(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var total float64
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := JaroWinkler(ta, tb); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(a))
}

// NumberSim compares two strings as numbers when both parse, returning a
// relative-difference similarity in [0, 1]; it falls back to
// LevenshteinSim otherwise. The baseline matchers use it for price-like
// attributes.
func NumberSim(a, b string) float64 {
	x, okA := parseFloat(a)
	y, okB := parseFloat(b)
	if okA && okB {
		if x == y {
			return 1
		}
		ax, ay := abs(x), abs(y)
		den := ax
		if ay > den {
			den = ay
		}
		if den == 0 {
			return 1
		}
		d := abs(x-y) / den
		if d > 1 {
			d = 1
		}
		return 1 - d
	}
	return LevenshteinSim(a, b)
}

func toSet(ts []string) map[string]bool {
	s := make(map[string]bool, len(ts))
	for _, t := range ts {
		s[t] = true
	}
	return s
}

func counts(ts []string) map[string]int {
	c := make(map[string]int, len(ts))
	for _, t := range ts {
		c[t]++
	}
	return c
}

func parseFloat(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return v, err == nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
