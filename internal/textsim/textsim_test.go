package textsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestJaroKnownValues(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.944444},
		{"dixon", "dicksonx", 0.766667},
		{"jellyfish", "smellyfish", 0.896296},
		{"abc", "abc", 1},
		{"", "", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"abc", "xyz", 0},
	}
	for _, tc := range tests {
		if got := Jaro(tc.a, tc.b); !approx(got, tc.want) {
			t.Errorf("Jaro(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.961111},
		{"dixon", "dicksonx", 0.813333},
		{"abc", "abc", 1},
	}
	for _, tc := range tests {
		if got := JaroWinkler(tc.a, tc.b); !approx(got, tc.want) {
			t.Errorf("JaroWinkler(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroSymmetryAndBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		s1, s2 := Jaro(a, b), Jaro(b, a)
		return approx(s1, s2) && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJaroWinklerBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1+1e-12 && s+1e-12 >= Jaro(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"a", "b", 1},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinTriangleProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		// Keep the strings short enough for the O(n*m) DP.
		a, b, c = clip(a), clip(b), clip(c)
		ab, bc, ac := Levenshtein(a, b), Levenshtein(b, c), Levenshtein(a, c)
		return ac <= ab+bc && ab == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clip(s string) string {
	if len(s) > 24 {
		return s[:24]
	}
	return s
}

func TestLevenshteinSim(t *testing.T) {
	if got := LevenshteinSim("", ""); got != 1 {
		t.Fatalf("empty sim = %v", got)
	}
	if got := LevenshteinSim("abcd", "abcd"); got != 1 {
		t.Fatalf("identical sim = %v", got)
	}
	if got := LevenshteinSim("abcd", "wxyz"); got != 0 {
		t.Fatalf("disjoint sim = %v", got)
	}
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		name string
		a, b []string
		want float64
	}{
		{"identical", []string{"a", "b"}, []string{"b", "a"}, 1},
		{"half", []string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{"disjoint", []string{"a"}, []string{"b"}, 0},
		{"both empty", nil, nil, 1},
		{"one empty", []string{"a"}, nil, 0},
		{"multiset collapses", []string{"a", "a"}, []string{"a"}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Jaccard(tc.a, tc.b); !approx(got, tc.want) {
				t.Fatalf("Jaccard = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap([]string{"a", "b", "c"}, []string{"a"}); !approx(got, 1) {
		t.Fatalf("subset overlap = %v", got)
	}
	if got := Overlap(nil, []string{"a"}); got != 0 {
		t.Fatalf("empty overlap = %v", got)
	}
}

func TestTokenCosine(t *testing.T) {
	if got := TokenCosine([]string{"a", "b"}, []string{"a", "b"}); !approx(got, 1) {
		t.Fatalf("identical cosine = %v", got)
	}
	if got := TokenCosine([]string{"a"}, []string{"b"}); got != 0 {
		t.Fatalf("disjoint cosine = %v", got)
	}
	if got := TokenCosine(nil, []string{"a"}); got != 0 {
		t.Fatalf("empty cosine = %v", got)
	}
}

func TestMongeElkan(t *testing.T) {
	a := []string{"digital", "camera"}
	b := []string{"digital", "cameras"}
	if got := MongeElkan(a, b); got < 0.9 {
		t.Fatalf("near-identical MongeElkan = %v, want > 0.9", got)
	}
	if got := MongeElkan(nil, b); got != 0 {
		t.Fatalf("empty MongeElkan = %v", got)
	}
}

func TestNumberSim(t *testing.T) {
	if got := NumberSim("100", "100"); got != 1 {
		t.Fatalf("equal numbers = %v", got)
	}
	if got := NumberSim("100", "50"); !approx(got, 0.5) {
		t.Fatalf("relative diff = %v, want 0.5", got)
	}
	if got := NumberSim("-100", "100"); got != 0 {
		t.Fatalf("clamped diff = %v, want 0", got)
	}
	if got := NumberSim("0", "0"); got != 1 {
		t.Fatalf("two zeros = %v", got)
	}
	// Non-numeric falls back to edit similarity.
	if got := NumberSim("sony", "sony"); got != 1 {
		t.Fatalf("string fallback = %v", got)
	}
}

func TestJaroLongCommonPrefix(t *testing.T) {
	// Regression guard: the matching window must not go negative for very
	// short strings.
	if got := Jaro("a", "a"); got != 1 {
		t.Fatalf("single char identical = %v", got)
	}
	if got := Jaro("a", "ab"); got <= 0 {
		t.Fatalf("single char prefix = %v", got)
	}
}

func TestJaroASCIIOnlyAssumption(t *testing.T) {
	// The similarity operates on bytes; multi-byte input must still stay
	// within bounds (tokenization lowercases and strips most of it anyway).
	s := strings.Repeat("é", 3)
	got := Jaro(s, "e")
	if got < 0 || got > 1 {
		t.Fatalf("multibyte Jaro out of bounds: %v", got)
	}
}
