package vec

import (
	"math"
	"sort"
)

// Stats summarizes a slice of scalars with the statistical operators the
// explainable matcher's feature engineering uses (§4.3 of the paper):
// max, min, count, sum, mean, median and range (max-min).
type Stats struct {
	Max, Min, Sum, Mean, Median, Range float64
	Count                              int
	// ArgMax and ArgMin are the indices (into the input slice) of the
	// extreme elements; the inverse feature transformation uses them to
	// attribute max/min feature coefficients back to a single decision
	// unit. They are -1 for an empty input.
	ArgMax, ArgMin int
}

// Summarize computes Stats over xs. An empty slice yields the zero summary
// with Count == 0 and ArgMax == ArgMin == -1; the matcher relies on this to
// featurize records whose attribute contains no decision unit.
func Summarize(xs []float64) Stats {
	s := Stats{ArgMax: -1, ArgMin: -1}
	if len(xs) == 0 {
		return s
	}
	s.Count = len(xs)
	s.Max = math.Inf(-1)
	s.Min = math.Inf(1)
	for i, x := range xs {
		s.Sum += x
		if x > s.Max {
			s.Max, s.ArgMax = x, i
		}
		if x < s.Min {
			s.Min, s.ArgMin = x, i
		}
	}
	s.Mean = s.Sum / float64(s.Count)
	s.Range = s.Max - s.Min
	s.Median = Median(xs)
	return s
}

// Median returns the median of xs (0 for an empty slice) without modifying
// the input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := Clone(xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MeanStd returns the mean and (population) standard deviation of xs. It
// returns (0, 0) for an empty slice and a zero deviation for singletons.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return mean, math.Sqrt(v / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the series are empty.
func Pearson(xs, ys []float64) float64 {
	checkLen(xs, ys)
	if len(xs) == 0 {
		return 0
	}
	mx, sx := MeanStd(xs)
	my, sy := MeanStd(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
	}
	cov /= float64(len(xs))
	r := cov / (sx * sy)
	if r > 1 {
		return 1
	}
	if r < -1 {
		return -1
	}
	return r
}
