package vec

import "fmt"

// This file holds the float32 / int8 kernels backing the arena model
// format (DESIGN §10). Arena-loaded systems store embeddings and scorer
// weights as contiguous float32 (or int8 with per-vector scales); the
// kernels below widen, dequantize and dot those buffers without per-token
// allocation. On amd64 with AVX2+FMA the 4-stream dot product dispatches
// to an assembly microkernel (f32_amd64.s); everywhere else the pure-Go
// fallbacks run. The two paths differ only in floating-point summation
// order, which the arena equivalence goldens bound with a committed
// tolerance.

// Widen converts src into dst element-wise (float32 → float64). The
// slices must have equal length.
func Widen(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Dequant8 writes scale*q[i] into dst: the inverse of the arena's int8
// per-vector quantization. The slices must have equal length.
func Dequant8(dst []float64, q []int8, scale float64) {
	if len(dst) != len(q) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(dst), len(q)))
	}
	for i, v := range q {
		dst[i] = scale * float64(v)
	}
}

// DotF32 returns the float32 inner product of a and b, accumulated in
// float32 with four independent chains (same shape as DotUnit).
func DotF32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	for i, v := range a {
		s0 += v * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Dot4F32 computes the four inner products of w against x0..x3 in one
// pass: the batched-layer kernel of the arena relevance scorer, where w
// is one neuron's weight row and x0..x3 are four decision units' feature
// rows. All five slices must have the same length.
func Dot4F32(w, x0, x1, x2, x3 []float32) (s0, s1, s2, s3 float32) {
	n := len(w)
	if len(x0) != n || len(x1) != n || len(x2) != n || len(x3) != n {
		panic(fmt.Sprintf("vec: dimension mismatch %d/%d/%d/%d != %d",
			len(x0), len(x1), len(x2), len(x3), n))
	}
	i := 0
	if f32UseASM && n >= 8 {
		m := n &^ 7
		s0, s1, s2, s3 = dot4Accel(w, x0, x1, x2, x3, m)
		i = m
	}
	for ; i < n; i++ {
		wi := w[i]
		s0 += wi * x0[i]
		s1 += wi * x1[i]
		s2 += wi * x2[i]
		s3 += wi * x3[i]
	}
	return s0, s1, s2, s3
}

// HasF32ASM reports whether the float32 kernels run on the AVX2+FMA
// assembly path on this machine (false on non-amd64 builds and on CPUs
// or kernels without AVX2, FMA and OS-saved YMM state).
func HasF32ASM() bool { return f32UseASM }
