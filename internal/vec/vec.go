// Package vec provides the dense vector and small-matrix primitives used
// throughout the WYM system: embedding arithmetic, cosine similarity, the
// mean/absolute-difference featurization of decision units, and the linear
// solves needed by the interpretable classifiers.
//
// All functions treat a []float64 as an immutable dense vector unless the
// name says otherwise (Add mutates its receiver-like first argument, Plus
// allocates). Dimension mismatches are programmer errors and panic.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// DotUnit returns the cosine similarity of two unit-or-zero vectors as a
// plain inner product, clamped to [-1, 1]. For vectors that satisfy the
// embed.NormalizedSource contract (unit L2 norm or all-zero) this equals
// Cosine — including the zero-vector → 0 convention, since a dot product
// with the zero vector is 0 — at a third of the floating-point work.
func DotUnit(a, b []float64) float64 {
	checkLen(a, b)
	// Four independent accumulators break the FP add dependency chain —
	// this loop fills the record similarity matrix, the single hottest
	// spot of the pipeline. The summation order differs from Dot by ulps,
	// which the discovery thresholds tolerate (see the golden-unit tests).
	b = b[:len(a)] // equal lengths: elide the b[i] bounds checks
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	for i, v := range a {
		s0 += v * b[i]
	}
	s := (s0 + s1) + (s2 + s3)
	if s > 1 {
		return 1
	}
	if s < -1 {
		return -1
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. If either
// vector has zero norm the similarity is defined as 0; this is the
// convention the relevance scorer relies on for the [UNP] zero embedding.
func Cosine(a, b []float64) float64 {
	checkLen(a, b)
	var dot, na, nb float64
	for i, v := range a {
		dot += v * b[i]
		na += v * v
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	// Clamp rounding noise so callers can rely on the [-1, 1] contract.
	if c > 1 {
		return 1
	}
	if c < -1 {
		return -1
	}
	return c
}

// Add accumulates b into a in place.
func Add(a, b []float64) {
	checkLen(a, b)
	for i, v := range b {
		a[i] += v
	}
}

// Plus returns a new vector equal to a + b.
func Plus(a, b []float64) []float64 {
	checkLen(a, b)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v + b[i]
	}
	return out
}

// Sub returns a new vector equal to a - b.
func Sub(a, b []float64) []float64 {
	checkLen(a, b)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// Scale multiplies a by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Scaled returns a new vector equal to s*a.
func Scaled(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = s * v
	}
	return out
}

// AXPY computes a += s*b in place.
func AXPY(a []float64, s float64, b []float64) {
	checkLen(a, b)
	for i, v := range b {
		a[i] += s * v
	}
}

// Mean returns the element-wise mean of a and b. Decision units use this as
// the symmetric half of their feature representation (challenge R3).
func Mean(a, b []float64) []float64 {
	checkLen(a, b)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = (v + b[i]) / 2
	}
	return out
}

// AbsDiff returns the element-wise absolute difference |a-b|, the second,
// order-invariant half of the decision-unit representation.
func AbsDiff(a, b []float64) []float64 {
	checkLen(a, b)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = math.Abs(v - b[i])
	}
	return out
}

// Normalize scales a to unit L2 norm in place and returns it. Zero vectors
// are returned unchanged.
func Normalize(a []float64) []float64 {
	n := Norm(a)
	if n == 0 {
		return a
	}
	Scale(a, 1/n)
	return a
}

// Zeros returns a zero vector of dimension n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...[]float64) []float64 {
	var n int
	for _, v := range vs {
		n += len(v)
	}
	out := make([]float64, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// MeanOf returns the element-wise mean of a non-empty set of equal-length
// vectors. It returns nil for an empty set.
func MeanOf(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		Add(out, v)
	}
	Scale(out, 1/float64(len(vs)))
	return out
}

func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(a), len(b)))
	}
}
