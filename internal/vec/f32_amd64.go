//go:build amd64

package vec

// f32UseASM gates the AVX2+FMA microkernel. It is decided once at init
// from CPUID: the instruction-set bits (AVX2, FMA) plus OSXSAVE and the
// XCR0 XMM|YMM bits, which confirm the operating system actually saves
// the 256-bit register state across context switches.
var f32UseASM = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if c1&fma == 0 || c1&osxsave == 0 {
		return false
	}
	if xlo, _ := xgetbv(); xlo&0x6 != 0x6 { // XMM and YMM state enabled in XCR0
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// dot4Accel runs the assembly microkernel over the first m elements
// (m > 0, m a multiple of 8) of the five streams.
func dot4Accel(w, x0, x1, x2, x3 []float32, m int) (s0, s1, s2, s3 float32) {
	var out [4]float32
	dot4avx2(&w[0], &x0[0], &x1[0], &x2[0], &x3[0], m, &out)
	return out[0], out[1], out[2], out[3]
}

//go:noescape
func dot4avx2(w, x0, x1, x2, x3 *float32, n int, out *[4]float32)

func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)
