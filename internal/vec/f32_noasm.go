//go:build !amd64

package vec

// Non-amd64 builds always run the pure-Go float32 kernels.
var f32UseASM = false

// dot4Accel is never called when f32UseASM is false; this stub keeps the
// portable build compiling.
func dot4Accel(w, x0, x1, x2, x3 []float32, m int) (s0, s1, s2, s3 float32) {
	return 0, 0, 0, 0
}
