package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotUnit(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical unit", []float64{1, 0}, []float64{1, 0}, 1},
		{"opposite unit", []float64{1, 0}, []float64{-1, 0}, -1},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"zero left", []float64{0, 0}, []float64{1, 0}, 0},
		{"zero right", []float64{0, 1}, []float64{0, 0}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := DotUnit(tc.a, tc.b); got != tc.want {
				t.Fatalf("DotUnit = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDotUnitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	DotUnit([]float64{1}, []float64{1, 2})
}

// TestDotUnitEqualsCosineOnUnitVectors: for normalized vectors the raw
// dot product must agree with the full cosine — the contract units.Input
// relies on when NormalizedVecs is set.
func TestDotUnitEqualsCosineOnUnitVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, b := make([]float64, 8), make([]float64, 8)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		Normalize(a)
		Normalize(b)
		if got, want := DotUnit(a, b), Cosine(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: DotUnit %v != Cosine %v", trial, got, want)
		}
		// Zero vectors keep the cosine convention.
		zero := make([]float64, 8)
		if DotUnit(zero, b) != 0 || Cosine(zero, b) != 0 {
			t.Fatal("zero-vector convention broken")
		}
	}
}

func TestDotUnitClamps(t *testing.T) {
	// Denormalized inputs violate the contract, but the clamp still bounds
	// the result so threshold comparisons cannot see values beyond ±1.
	if got := DotUnit([]float64{2, 0}, []float64{2, 0}); got != 1 {
		t.Fatalf("DotUnit clamp high = %v, want 1", got)
	}
	if got := DotUnit([]float64{2, 0}, []float64{-2, 0}); got != -1 {
		t.Fatalf("DotUnit clamp low = %v, want -1", got)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); !almostEq(got, 5) {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Fatalf("Norm(nil) = %v, want 0", got)
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical", []float64{1, 2}, []float64{1, 2}, 1},
		{"opposite", []float64{1, 0}, []float64{-1, 0}, -1},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"zero left", []float64{0, 0}, []float64{1, 2}, 0},
		{"zero right", []float64{1, 2}, []float64{0, 0}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Cosine(tc.a, tc.b); !almostEq(got, tc.want) {
				t.Fatalf("Cosine = %v, want %v", got, tc.want)
			}
		})
	}
}

// squash maps quick's unbounded float64 samples into [-1, 1]; embedding
// coordinates and relevance scores in WYM live in that range.
func squash(a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = math.Tanh(v)
	}
	return out
}

func TestCosineBoundsProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		c := Cosine(squash(a[:]), squash(b[:]))
		return c >= -1 && c <= 1 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSymmetryProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		x, y := squash(a[:]), squash(b[:])
		return almostEq(Cosine(x, y), Cosine(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAbsDiffSymmetry(t *testing.T) {
	// The decision-unit representation (mean ⊕ |diff|) must be invariant
	// to swapping left and right tokens — challenge R3 in the paper.
	f := func(a, b [6]float64) bool {
		x, y := squash(a[:]), squash(b[:])
		m1, m2 := Mean(x, y), Mean(y, x)
		d1, d2 := AbsDiff(x, y), AbsDiff(y, x)
		for i := range m1 {
			if !almostEq(m1[i], m2[i]) || !almostEq(d1[i], d2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2}
	Add(a, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Fatalf("Add in place = %v", a)
	}
	s := Sub([]float64{4, 6}, []float64{1, 2})
	if s[0] != 3 || s[1] != 4 {
		t.Fatalf("Sub = %v", s)
	}
	Scale(s, 2)
	if s[0] != 6 || s[1] != 8 {
		t.Fatalf("Scale = %v", s)
	}
	p := Plus([]float64{1, 1}, []float64{2, 3})
	if p[0] != 3 || p[1] != 4 {
		t.Fatalf("Plus = %v", p)
	}
	sc := Scaled([]float64{1, 2}, 3)
	if sc[0] != 3 || sc[1] != 6 {
		t.Fatalf("Scaled = %v", sc)
	}
	ax := []float64{1, 1}
	AXPY(ax, 2, []float64{1, 2})
	if ax[0] != 3 || ax[1] != 5 {
		t.Fatalf("AXPY = %v", ax)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]float64{3, 4})
	if !almostEq(Norm(v), 1) {
		t.Fatalf("Normalize norm = %v, want 1", Norm(v))
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize zero vector changed: %v", z)
	}
}

func TestConcatAndClone(t *testing.T) {
	c := Concat([]float64{1}, []float64{2, 3}, nil)
	if len(c) != 3 || c[2] != 3 {
		t.Fatalf("Concat = %v", c)
	}
	orig := []float64{1, 2}
	cp := Clone(orig)
	cp[0] = 9
	if orig[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != nil {
		t.Fatal("MeanOf(nil) should be nil")
	}
	m := MeanOf([][]float64{{1, 2}, {3, 4}})
	if !almostEq(m[0], 2) || !almostEq(m[1], 3) {
		t.Fatalf("MeanOf = %v", m)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, -1, 2})
	if s.Max != 3 || s.Min != -1 || s.Count != 3 || !almostEq(s.Sum, 4) {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.ArgMax != 0 || s.ArgMin != 1 {
		t.Fatalf("arg extrema = %d, %d", s.ArgMax, s.ArgMin)
	}
	if !almostEq(s.Median, 2) || !almostEq(s.Range, 4) {
		t.Fatalf("median/range = %v/%v", s.Median, s.Range)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.ArgMax != -1 || s.ArgMin != -1 || s.Max != 0 {
		t.Fatalf("empty Summarize = %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); !almostEq(got, 2.5) {
		t.Fatalf("even Median = %v", got)
	}
	in := []float64{9, 1, 5}
	if got := Median(in); !almostEq(got, 5) {
		t.Fatalf("odd Median = %v", got)
	}
	if in[0] != 9 {
		t.Fatal("Median mutated its input")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(m, 5) || !almostEq(s, 2) {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("MeanStd(nil) should be zero")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); !almostEq(got, 1) {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); !almostEq(got, -1) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %v", got)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(a, b [10]float64) bool {
		r := Pearson(squash(a[:]), squash(b[:]))
		return r >= -1 && r <= 1 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	x, err := Solve(a, []float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if !almostEq(x[i], want) {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonally dominate to keep the system well conditioned.
		for i := 0; i < n; i++ {
			a.AddAt(i, i, float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := Solve(a, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected ErrSingular")
	}
	// With ridge the same system becomes solvable.
	if _, err := Solve(a, []float64{1, 2}, 0.1); err != nil {
		t.Fatalf("ridge solve failed: %v", err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	b := []float64{4, 9}
	if _, err := Solve(a, b, 0); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 1) != 3 || b[0] != 4 || b[1] != 9 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j+1))
		}
	}
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}
