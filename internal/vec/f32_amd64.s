//go:build amd64

#include "textflag.h"

// func dot4avx2(w, x0, x1, x2, x3 *float32, n int, out *[4]float32)
//
// Four simultaneous float32 dot products of one weight stream w against
// four feature streams x0..x3, n a positive multiple of 8. The main loop
// consumes 16 floats per stream per iteration with eight independent FMA
// accumulator chains (two per stream) to cover the FMA latency; a single
// 8-wide step absorbs an odd trailing block. Horizontal reduction order
// therefore differs from the scalar fallback by ulps — callers treat the
// two paths as equal only within the arena equivalence tolerance.
TEXT ·dot4avx2(SB), NOSPLIT, $0-56
	MOVQ w+0(FP), DI
	MOVQ x0+8(FP), SI
	MOVQ x1+16(FP), DX
	MOVQ x2+24(FP), CX
	MOVQ x3+32(FP), R8
	MOVQ n+40(FP), R9

	VXORPS Y0, Y0, Y0 // acc x0, even block
	VXORPS Y1, Y1, Y1 // acc x1, even block
	VXORPS Y2, Y2, Y2 // acc x2, even block
	VXORPS Y3, Y3, Y3 // acc x3, even block
	VXORPS Y4, Y4, Y4 // acc x0, odd block
	VXORPS Y5, Y5, Y5 // acc x1, odd block
	VXORPS Y6, Y6, Y6 // acc x2, odd block
	VXORPS Y7, Y7, Y7 // acc x3, odd block

	XORQ R11, R11 // i = 0
	MOVQ R9, R12
	ANDQ $-16, R12 // n16 = n &^ 15

loop16:
	CMPQ R11, R12
	JGE  tail8
	VMOVUPS (DI)(R11*4), Y8    // w[i : i+8]
	VMOVUPS 32(DI)(R11*4), Y9  // w[i+8 : i+16]
	VMOVUPS (SI)(R11*4), Y10
	VFMADD231PS Y8, Y10, Y0
	VMOVUPS 32(SI)(R11*4), Y11
	VFMADD231PS Y9, Y11, Y4
	VMOVUPS (DX)(R11*4), Y12
	VFMADD231PS Y8, Y12, Y1
	VMOVUPS 32(DX)(R11*4), Y13
	VFMADD231PS Y9, Y13, Y5
	VMOVUPS (CX)(R11*4), Y14
	VFMADD231PS Y8, Y14, Y2
	VMOVUPS 32(CX)(R11*4), Y15
	VFMADD231PS Y9, Y15, Y6
	VMOVUPS (R8)(R11*4), Y10
	VFMADD231PS Y8, Y10, Y3
	VMOVUPS 32(R8)(R11*4), Y11
	VFMADD231PS Y9, Y11, Y7
	ADDQ $16, R11
	JMP  loop16

tail8:
	CMPQ R11, R9
	JGE  reduce
	VMOVUPS (DI)(R11*4), Y8
	VMOVUPS (SI)(R11*4), Y10
	VFMADD231PS Y8, Y10, Y0
	VMOVUPS (DX)(R11*4), Y11
	VFMADD231PS Y8, Y11, Y1
	VMOVUPS (CX)(R11*4), Y12
	VFMADD231PS Y8, Y12, Y2
	VMOVUPS (R8)(R11*4), Y13
	VFMADD231PS Y8, Y13, Y3
	ADDQ $8, R11
	JMP  tail8

reduce:
	VADDPS Y4, Y0, Y0
	VADDPS Y5, Y1, Y1
	VADDPS Y6, Y2, Y2
	VADDPS Y7, Y3, Y3

	MOVQ out+48(FP), R10

	VEXTRACTF128 $1, Y0, X8
	VADDPS  X8, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS  X0, (R10)

	VEXTRACTF128 $1, Y1, X8
	VADDPS  X8, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VMOVSS  X1, 4(R10)

	VEXTRACTF128 $1, Y2, X8
	VADDPS  X8, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VMOVSS  X2, 8(R10)

	VEXTRACTF128 $1, Y3, X8
	VADDPS  X8, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	VMOVSS  X3, 12(R10)

	VZEROUPPER
	RET

// func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
