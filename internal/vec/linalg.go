package vec

import (
	"errors"
	"math"
)

// ErrSingular is returned by Solve when the coefficient matrix is singular
// (or numerically so) even after ridge regularization.
var ErrSingular = errors.New("vec: singular matrix")

// Matrix is a dense row-major matrix. The interpretable classifiers (LDA,
// the ridge surrogate inside the LIME explainer) use it for the small
// symmetric systems they solve; it is not a general-purpose BLAS.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// AddAt accumulates v into element (i, j).
func (m *Matrix) AddAt(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("vec: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		out[i] = Dot(row, x)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	cp := NewMatrix(m.Rows, m.Cols)
	copy(cp.Data, m.Data)
	return cp
}

// Solve solves the square linear system a*x = b by Gaussian elimination
// with partial pivoting, adding ridge to the diagonal first. The input
// matrix is not modified. Classifiers pass a small positive ridge so that
// near-collinear engineered features (count vs sum over the same scope)
// stay solvable.
func Solve(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		panic("vec: Solve requires a square system")
	}
	n := a.Rows
	m := a.Clone()
	for i := 0; i < n; i++ {
		m.AddAt(i, i, ridge)
	}
	x := Clone(b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		pv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.AddAt(r, c, -f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}
