package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randF32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// dot4Ref is the float64 reference the fast paths are compared against.
func dot4Ref(w, x0, x1, x2, x3 []float32) (s [4]float64) {
	for i, wi := range w {
		s[0] += float64(wi) * float64(x0[i])
		s[1] += float64(wi) * float64(x1[i])
		s[2] += float64(wi) * float64(x2[i])
		s[3] += float64(wi) * float64(x3[i])
	}
	return s
}

func TestDot4F32MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sizes straddle every kernel regime: scalar only, one 8-block, odd
	// 8-block tail, 16-block main loop, and realistic layer widths.
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 32, 192, 200, 300, 304} {
		w := randF32(rng, n)
		x0, x1, x2, x3 := randF32(rng, n), randF32(rng, n), randF32(rng, n), randF32(rng, n)
		ref := dot4Ref(w, x0, x1, x2, x3)
		s0, s1, s2, s3 := Dot4F32(w, x0, x1, x2, x3)
		tol := 1e-4 * math.Max(1, math.Sqrt(float64(n)))
		for i, got := range []float32{s0, s1, s2, s3} {
			if math.Abs(float64(got)-ref[i]) > tol {
				t.Fatalf("n=%d stream=%d: got %v, reference %v (asm=%v)", n, i, got, ref[i], HasF32ASM())
			}
		}
	}
}

func TestDot4F32ASMAgainstGeneric(t *testing.T) {
	if !HasF32ASM() {
		t.Skip("no float32 assembly kernel on this machine")
	}
	rng := rand.New(rand.NewSource(11))
	defer func(prev bool) { f32UseASM = prev }(f32UseASM)
	for _, n := range []int{8, 16, 40, 96, 192, 300, 304} {
		w := randF32(rng, n)
		x0, x1, x2, x3 := randF32(rng, n), randF32(rng, n), randF32(rng, n), randF32(rng, n)
		f32UseASM = true
		a0, a1, a2, a3 := Dot4F32(w, x0, x1, x2, x3)
		f32UseASM = false
		g0, g1, g2, g3 := Dot4F32(w, x0, x1, x2, x3)
		for i, pair := range [][2]float32{{a0, g0}, {a1, g1}, {a2, g2}, {a3, g3}} {
			if math.Abs(float64(pair[0])-float64(pair[1])) > 1e-4 {
				t.Fatalf("n=%d stream=%d: asm %v vs generic %v", n, i, pair[0], pair[1])
			}
		}
	}
}

func TestDot4F32PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot4F32(make([]float32, 8), make([]float32, 8), make([]float32, 7), make([]float32, 8), make([]float32, 8))
}

func TestDotF32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 4, 5, 7, 8, 33, 192} {
		a, b := randF32(rng, n), randF32(rng, n)
		var ref float64
		for i := range a {
			ref += float64(a[i]) * float64(b[i])
		}
		if got := DotF32(a, b); math.Abs(float64(got)-ref) > 1e-4 {
			t.Fatalf("n=%d: got %v, want %v", n, got, ref)
		}
	}
}

func TestWidenAndDequant8(t *testing.T) {
	src := []float32{1.5, -2.25, 0, 3}
	dst := make([]float64, len(src))
	Widen(dst, src)
	for i := range src {
		if dst[i] != float64(src[i]) {
			t.Fatalf("Widen[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
	q := []int8{127, -128, 0, 64}
	scale := 0.03125
	Dequant8(dst, q, scale)
	for i := range q {
		if want := scale * float64(q[i]); dst[i] != want {
			t.Fatalf("Dequant8[%d] = %v, want %v", i, dst[i], want)
		}
	}
}

func TestWidenPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Widen(make([]float64, 3), make([]float32, 4))
}

func TestDequant8PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dequant8(make([]float64, 3), make([]int8, 4), 1)
}

func BenchmarkDot4F32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 192
	w := randF32(rng, n)
	x0, x1, x2, x3 := randF32(rng, n), randF32(rng, n), randF32(rng, n), randF32(rng, n)
	b.ReportAllocs()
	var sink float32
	for i := 0; i < b.N; i++ {
		s0, s1, s2, s3 := Dot4F32(w, x0, x1, x2, x3)
		sink += s0 + s1 + s2 + s3
	}
	_ = sink
}
