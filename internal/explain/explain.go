// Package explain implements the post-hoc, perturbation-based explainers
// the paper compares against (§5.2): LIME, a LEMON-style dual-entity
// variant, and a Landmark-style per-entity explainer. All three treat the
// matcher as a black box exposing a match probability, perturb the record
// by dropping tokens, and fit a weighted ridge surrogate whose
// coefficients become token attributions.
package explain

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"wym/internal/data"
	"wym/internal/vec"
)

// ProbaFunc is the black-box interface to the explained matcher.
type ProbaFunc func(p data.Pair) float64

// Side identifies the entity a token belongs to.
type Side int

// Sides.
const (
	Left Side = iota
	Right
)

// Attribution is one token's weight in a post-hoc explanation. Positive
// weights push toward match.
type Attribution struct {
	Side   Side
	Attr   int
	Pos    int
	Text   string
	Weight float64
}

// TokenRef locates one token occurrence inside a record pair.
type TokenRef struct {
	Side Side
	Attr int
	Pos  int
	Text string
}

// Enumerate lists every token occurrence of the pair, left side first,
// using whitespace word splitting (the subject's own pipeline does its own
// tokenization on the reconstructed strings).
func Enumerate(p data.Pair) []TokenRef {
	var refs []TokenRef
	add := func(side Side, e data.Entity) {
		for a, v := range e {
			for i, w := range strings.Fields(v) {
				refs = append(refs, TokenRef{Side: side, Attr: a, Pos: i, Text: w})
			}
		}
	}
	add(Left, p.Left)
	add(Right, p.Right)
	return refs
}

// Mask rebuilds the pair keeping only the tokens whose flag is set. keep
// is aligned with Enumerate(p).
func Mask(p data.Pair, refs []TokenRef, keep []bool) data.Pair {
	if len(refs) != len(keep) {
		panic(fmt.Sprintf("explain: %d refs but %d flags", len(refs), len(keep)))
	}
	left := make([][]string, len(p.Left))
	right := make([][]string, len(p.Right))
	for i, ref := range refs {
		if !keep[i] {
			continue
		}
		if ref.Side == Left {
			left[ref.Attr] = append(left[ref.Attr], ref.Text)
		} else {
			right[ref.Attr] = append(right[ref.Attr], ref.Text)
		}
	}
	out := data.Pair{
		ID:    p.ID,
		Label: p.Label,
		Left:  make(data.Entity, len(p.Left)),
		Right: make(data.Entity, len(p.Right)),
	}
	for a := range left {
		out.Left[a] = strings.Join(left[a], " ")
	}
	for a := range right {
		out.Right[a] = strings.Join(right[a], " ")
	}
	return out
}

// Config holds shared perturbation-explainer settings.
type Config struct {
	Samples  int     // number of perturbations (per entity for Landmark)
	DropProb float64 // per-token drop probability per sample
	Ridge    float64 // surrogate regularization
	Kernel   float64 // proximity kernel width over the dropped fraction
	Seed     int64
}

// DefaultConfig mirrors the paper's settings where stated (Landmark uses
// 100 perturbations per entity).
func DefaultConfig() Config {
	return Config{Samples: 100, DropProb: 0.3, Ridge: 1.0, Kernel: 0.75, Seed: 1}
}

// LIME explains the prediction by sampling joint perturbations of both
// entities and fitting one weighted ridge surrogate over all tokens.
func LIME(f ProbaFunc, p data.Pair, cfg Config) []Attribution {
	refs := Enumerate(p)
	if len(refs) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	masks, probas, weights := samplePerturbations(f, p, refs, cfg, rng, nil)
	coef := fitSurrogate(masks, probas, weights, cfg.Ridge)
	return attributions(refs, coef)
}

// LEMON is the dual-entity variant: half the samples perturb only the
// left entity, half only the right, which concentrates the surrogate's
// signal on each description in turn (the paper uses LEMON at single-token
// granularity).
func LEMON(f ProbaFunc, p data.Pair, cfg Config) []Attribution {
	refs := Enumerate(p)
	if len(refs) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	half := cfg.Samples / 2
	cfgL := cfg
	cfgL.Samples = half
	masksL, probasL, weightsL := samplePerturbations(f, p, refs, cfgL, rng, sideFilter(refs, Left))
	cfgR := cfg
	cfgR.Samples = cfg.Samples - half
	masksR, probasR, weightsR := samplePerturbations(f, p, refs, cfgR, rng, sideFilter(refs, Right))
	masks := append(masksL, masksR...)
	probas := append(probasL, probasR...)
	weights := append(weightsL, weightsR...)
	coef := fitSurrogate(masks, probas, weights, cfg.Ridge)
	return attributions(refs, coef)
}

// Landmark explains each entity against the other used as a fixed
// landmark: perturbations touch one side only and a separate surrogate is
// fitted per side; the two attribution sets are concatenated.
func Landmark(f ProbaFunc, p data.Pair, cfg Config) []Attribution {
	refs := Enumerate(p)
	if len(refs) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Attribution
	for _, side := range []Side{Left, Right} {
		filter := sideFilter(refs, side)
		masks, probas, weights := samplePerturbations(f, p, refs, cfg, rng, filter)
		coef := fitSurrogate(masks, probas, weights, cfg.Ridge)
		for i, ref := range refs {
			if ref.Side != side {
				continue
			}
			out = append(out, Attribution{
				Side: ref.Side, Attr: ref.Attr, Pos: ref.Pos, Text: ref.Text,
				Weight: coef[i],
			})
		}
	}
	return out
}

// sideFilter marks which token positions a perturbation may drop.
func sideFilter(refs []TokenRef, side Side) []bool {
	out := make([]bool, len(refs))
	for i, r := range refs {
		out[i] = r.Side == side
	}
	return out
}

// samplePerturbations draws cfg.Samples masked variants of p (always
// including the unperturbed record as an anchor), evaluates the black box,
// and returns the binary masks, probabilities and kernel weights.
// mutable, when non-nil, restricts which tokens may be dropped.
func samplePerturbations(f ProbaFunc, p data.Pair, refs []TokenRef, cfg Config,
	rng *rand.Rand, mutable []bool) (masks [][]float64, probas, weights []float64) {
	n := cfg.Samples
	if n < 2 {
		n = 2
	}
	masks = make([][]float64, 0, n)
	probas = make([]float64, 0, n)
	weights = make([]float64, 0, n)

	appendSample := func(keep []bool) {
		mask := make([]float64, len(refs))
		dropped := 0
		for i, k := range keep {
			if k {
				mask[i] = 1
			} else {
				dropped++
			}
		}
		frac := float64(dropped) / float64(len(refs))
		masks = append(masks, mask)
		probas = append(probas, f(Mask(p, refs, keep)))
		weights = append(weights, math.Exp(-frac*frac/(cfg.Kernel*cfg.Kernel)))
	}

	full := make([]bool, len(refs))
	for i := range full {
		full[i] = true
	}
	appendSample(full)

	for s := 1; s < n; s++ {
		keep := make([]bool, len(refs))
		anyDropped := false
		for i := range keep {
			keep[i] = true
			if mutable != nil && !mutable[i] {
				continue
			}
			if rng.Float64() < cfg.DropProb {
				keep[i] = false
				anyDropped = true
			}
		}
		if !anyDropped {
			// Force one drop so the sample is informative.
			idx := rng.Intn(len(keep))
			if mutable != nil {
				var candidates []int
				for i, ok := range mutable {
					if ok {
						candidates = append(candidates, i)
					}
				}
				if len(candidates) == 0 {
					appendSample(keep)
					continue
				}
				idx = candidates[rng.Intn(len(candidates))]
			}
			keep[idx] = false
		}
		appendSample(keep)
	}
	return masks, probas, weights
}

// fitSurrogate solves the weighted ridge regression
// (XᵀWX + λI)β = XᵀW(y - ȳ) over the binary masks and returns β.
func fitSurrogate(masks [][]float64, probas, weights []float64, ridge float64) []float64 {
	d := len(masks[0])
	// Center the target so the intercept is absorbed.
	var wSum, yMean float64
	for i, w := range weights {
		yMean += w * probas[i]
		wSum += w
	}
	yMean /= wSum

	xtwx := vec.NewMatrix(d, d)
	xtwy := make([]float64, d)
	for i, mask := range masks {
		w := weights[i]
		dy := probas[i] - yMean
		for a := 0; a < d; a++ {
			if mask[a] == 0 {
				continue
			}
			xtwy[a] += w * dy
			row := xtwx.Data[a*d : (a+1)*d]
			for b := 0; b < d; b++ {
				if mask[b] != 0 {
					row[b] += w
				}
			}
		}
	}
	if ridge <= 0 {
		ridge = 1e-6
	}
	coef, err := vec.Solve(xtwx, xtwy, ridge)
	if err != nil {
		// Should not happen with positive ridge; degrade to zeros rather
		// than failing an explanation.
		return make([]float64, d)
	}
	return coef
}

func attributions(refs []TokenRef, coef []float64) []Attribution {
	out := make([]Attribution, len(refs))
	for i, ref := range refs {
		out[i] = Attribution{
			Side: ref.Side, Attr: ref.Attr, Pos: ref.Pos, Text: ref.Text,
			Weight: coef[i],
		}
	}
	return out
}

// TopTokens returns the texts of the k highest-|weight| attributions.
func TopTokens(attribs []Attribution, k int) []Attribution {
	sorted := make([]Attribution, len(attribs))
	copy(sorted, attribs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && math.Abs(sorted[j].Weight) > math.Abs(sorted[j-1].Weight); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
