package explain

import (
	"math"
	"strings"
	"testing"

	"wym/internal/data"
	"wym/internal/textsim"
)

// overlapProba is a transparent stand-in matcher: the Jaccard overlap of
// the two descriptions. Dropping a shared token lowers it; dropping a
// unique token raises it — so a correct explainer must attribute positive
// weight to shared tokens and negative weight to unique ones.
func overlapProba(p data.Pair) float64 {
	var l, r []string
	for _, v := range p.Left {
		l = append(l, strings.Fields(v)...)
	}
	for _, v := range p.Right {
		r = append(r, strings.Fields(v)...)
	}
	return textsim.Jaccard(l, r)
}

func testPair() data.Pair {
	return data.Pair{
		Left:  data.Entity{"alpha beta gamma", "shared"},
		Right: data.Entity{"alpha beta delta", "shared"},
	}
}

func TestEnumerate(t *testing.T) {
	refs := Enumerate(testPair())
	if len(refs) != 8 {
		t.Fatalf("enumerated %d tokens, want 8", len(refs))
	}
	if refs[0].Side != Left || refs[0].Text != "alpha" || refs[0].Attr != 0 {
		t.Fatalf("first ref = %+v", refs[0])
	}
	if refs[4].Side != Right {
		t.Fatalf("right side should start at index 4: %+v", refs[4])
	}
}

func TestMask(t *testing.T) {
	p := testPair()
	refs := Enumerate(p)
	keep := make([]bool, len(refs))
	for i := range keep {
		keep[i] = true
	}
	keep[1] = false // drop left "beta"
	masked := Mask(p, refs, keep)
	if masked.Left[0] != "alpha gamma" {
		t.Fatalf("masked left = %q", masked.Left[0])
	}
	if masked.Right[0] != "alpha beta delta" {
		t.Fatalf("right side should be untouched: %q", masked.Right[0])
	}
	// Original must not be mutated.
	if p.Left[0] != "alpha beta gamma" {
		t.Fatal("Mask mutated the input pair")
	}
}

func TestMaskPanicsOnMisalignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mask(testPair(), Enumerate(testPair()), nil)
}

func signOfToken(attribs []Attribution, text string, side Side) float64 {
	for _, a := range attribs {
		if a.Text == text && a.Side == side {
			return a.Weight
		}
	}
	return math.NaN()
}

func TestLIMEAttributionSigns(t *testing.T) {
	p := testPair()
	cfg := DefaultConfig()
	cfg.Samples = 400
	attribs := LIME(overlapProba, p, cfg)
	if len(attribs) != 8 {
		t.Fatalf("attributions = %d", len(attribs))
	}
	// Shared tokens support the (pseudo-)match; unique tokens oppose it.
	if w := signOfToken(attribs, "alpha", Left); w <= 0 {
		t.Fatalf("shared token weight = %v, want > 0", w)
	}
	if w := signOfToken(attribs, "gamma", Left); w >= 0 {
		t.Fatalf("unique token weight = %v, want < 0", w)
	}
	if w := signOfToken(attribs, "delta", Right); w >= 0 {
		t.Fatalf("unique right token weight = %v, want < 0", w)
	}
}

func TestLIMEDeterministic(t *testing.T) {
	p := testPair()
	a := LIME(overlapProba, p, DefaultConfig())
	b := LIME(overlapProba, p, DefaultConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("LIME is not deterministic for a fixed seed")
		}
	}
}

func TestLIMEEmptyPair(t *testing.T) {
	p := data.Pair{Left: data.Entity{""}, Right: data.Entity{""}}
	if got := LIME(overlapProba, p, DefaultConfig()); got != nil {
		t.Fatalf("empty pair should yield nil, got %v", got)
	}
}

func TestLEMONSigns(t *testing.T) {
	p := testPair()
	cfg := DefaultConfig()
	cfg.Samples = 400
	attribs := LEMON(overlapProba, p, cfg)
	if w := signOfToken(attribs, "alpha", Left); w <= 0 {
		t.Fatalf("LEMON shared token weight = %v", w)
	}
	if w := signOfToken(attribs, "gamma", Left); w >= 0 {
		t.Fatalf("LEMON unique token weight = %v", w)
	}
}

func TestLandmarkSigns(t *testing.T) {
	p := testPair()
	cfg := DefaultConfig()
	cfg.Samples = 300
	attribs := Landmark(overlapProba, p, cfg)
	if len(attribs) != 8 {
		t.Fatalf("landmark attributions = %d, want one per token", len(attribs))
	}
	if w := signOfToken(attribs, "alpha", Left); w <= 0 {
		t.Fatalf("landmark shared-left weight = %v", w)
	}
	if w := signOfToken(attribs, "alpha", Right); w <= 0 {
		t.Fatalf("landmark shared-right weight = %v", w)
	}
	if w := signOfToken(attribs, "delta", Right); w >= 0 {
		t.Fatalf("landmark unique-right weight = %v", w)
	}
}

func TestLandmarkPerturbsOneSideOnly(t *testing.T) {
	// With the left entity as target, the proba function must never see a
	// modified right side during the left pass. Track it via a probe.
	p := testPair()
	var sawRightChange bool
	probe := func(q data.Pair) float64 {
		if q.Left[0] == p.Left[0] && q.Left[1] == p.Left[1] {
			// left untouched → this is a right-side perturbation; fine.
			return overlapProba(q)
		}
		if q.Right[0] != p.Right[0] || q.Right[1] != p.Right[1] {
			sawRightChange = true
		}
		return overlapProba(q)
	}
	cfg := DefaultConfig()
	cfg.Samples = 50
	Landmark(probe, p, cfg)
	if sawRightChange {
		t.Fatal("Landmark perturbed both sides in one sample")
	}
}

func TestTopTokens(t *testing.T) {
	attribs := []Attribution{
		{Text: "a", Weight: 0.1},
		{Text: "b", Weight: -0.9},
		{Text: "c", Weight: 0.5},
	}
	top := TopTokens(attribs, 2)
	if top[0].Text != "b" || top[1].Text != "c" {
		t.Fatalf("top = %v", top)
	}
	if got := TopTokens(attribs, 10); len(got) != 3 {
		t.Fatalf("overlong k should clamp: %d", len(got))
	}
}

func TestFitSurrogateRecoversLinearModel(t *testing.T) {
	// y = 0.6*x0 - 0.4*x1 (+ constant). The surrogate must recover the
	// signs and approximate magnitudes.
	masks := [][]float64{
		{1, 1}, {1, 0}, {0, 1}, {0, 0},
		{1, 1}, {1, 0}, {0, 1}, {0, 0},
	}
	probas := make([]float64, len(masks))
	for i, m := range masks {
		probas[i] = 0.2 + 0.6*m[0] - 0.4*m[1]
	}
	weights := make([]float64, len(masks))
	for i := range weights {
		weights[i] = 1
	}
	coef := fitSurrogate(masks, probas, weights, 0.01)
	if coef[0] < 0.4 || coef[1] > -0.2 {
		t.Fatalf("surrogate coef = %v", coef)
	}
}
