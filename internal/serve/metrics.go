package serve

import (
	"net/http"
	"time"

	"wym/internal/obs"
)

// HTTPMetrics records per-route request observability: a request counter
// labeled by route and status class, and a latency histogram per route.
// Wrap each mux entry with Route so the route label is the pattern the
// operator knows ("/predict"), never the raw request path (unbounded
// label cardinality). A nil *HTTPMetrics is a transparent no-op, so
// wiring can be unconditional.
type HTTPMetrics struct {
	reg *obs.Registry
}

// NewHTTPMetrics binds the middleware to a registry.
func NewHTTPMetrics(reg *obs.Registry) *HTTPMetrics {
	return &HTTPMetrics{reg: reg}
}

// statusClasses are the code label values on wym_http_requests_total —
// classes, not raw codes, to keep series cardinality fixed per route.
var statusClasses = [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

func statusClass(code int) string {
	idx := code/100 - 1
	if idx < 0 || idx >= len(statusClasses) {
		return "5xx" // defensive: malformed codes count as server errors
	}
	return statusClasses[idx]
}

// Route wraps a handler with per-route instrumentation. All series are
// registered up front, so the request path is lock-free metric updates
// plus one statusRecorder allocation.
func (m *HTTPMetrics) Route(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	seconds := m.reg.Histogram("wym_http_request_seconds",
		"HTTP request latency by route.",
		obs.DefaultLatencyBuckets, obs.L("route", route))
	byClass := make(map[string]*obs.Counter, len(statusClasses))
	for _, class := range statusClasses {
		byClass[class] = m.reg.Counter("wym_http_requests_total",
			"HTTP requests by route and status class.",
			obs.L("route", route), obs.L("code", class))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		seconds.Observe(time.Since(start).Seconds())
		status := rec.status
		if status == 0 {
			// Handler wrote nothing; net/http sends 200 on return.
			status = http.StatusOK
		}
		byClass[statusClass(status)].Inc()
	})
}
