package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wym/internal/obs"
)

func TestStatusClass(t *testing.T) {
	cases := map[int]string{
		100: "1xx", 200: "2xx", 204: "2xx", 301: "3xx",
		404: "4xx", 429: "4xx", 500: "5xx", 599: "5xx",
		0: "5xx", 700: "5xx", // out-of-range codes count as server errors
	}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestHTTPMetricsRoute(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewHTTPMetrics(reg)
	h := m.Route("/echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			WriteError(w, http.StatusBadRequest, "nope")
			return
		}
		w.Write([]byte("ok")) // implicit 200
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/?fail=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ok := reg.Counter("wym_http_requests_total",
		"HTTP requests by route and status class.",
		obs.L("route", "/echo"), obs.L("code", "2xx"))
	bad := reg.Counter("wym_http_requests_total",
		"HTTP requests by route and status class.",
		obs.L("route", "/echo"), obs.L("code", "4xx"))
	if ok.Value() != 3 || bad.Value() != 1 {
		t.Fatalf("2xx = %d, 4xx = %d; want 3, 1", ok.Value(), bad.Value())
	}
	hist := reg.Histogram("wym_http_request_seconds",
		"HTTP request latency by route.",
		obs.DefaultLatencyBuckets, obs.L("route", "/echo"))
	if hist.Count() != 4 {
		t.Fatalf("latency observations = %d, want 4", hist.Count())
	}

	// A nil HTTPMetrics is transparent.
	var nilM *HTTPMetrics
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := nilM.Route("/x", inner); got == nil {
		t.Fatal("nil HTTPMetrics.Route returned nil handler")
	}
}

func TestLimiterShedCounter(t *testing.T) {
	l := NewLimiter(1, time.Second)
	reg := obs.NewRegistry()
	sheds := reg.Counter("wym_server_shed_total", "sheds")
	l.CountSheds(sheds)

	enter := make(chan struct{})
	release := make(chan struct{})
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(enter)
		<-release
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-enter // first request is inside the handler, occupying the slot

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	close(release)
	<-done
	if got := sheds.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Rendered output carries the shed series.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wym_server_shed_total 1") {
		t.Fatalf("scrape missing shed counter:\n%s", b.String())
	}

	// Nil limiter ignores the attach (never sheds, nothing to count).
	var nilL *Limiter
	nilL.CountSheds(sheds)
}
