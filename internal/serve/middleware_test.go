package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func quietLogger(buf *bytes.Buffer) *log.Logger { return log.New(buf, "", 0) }

func TestWriteJSONBuffersBeforeHeader(t *testing.T) {
	// A value json cannot marshal must yield a clean 500, never a 200
	// status with a truncated body.
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("missing error field: %q", rec.Body.String())
	}
}

func TestWriteJSONHappyPath(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusTeapot, map[string]int{"n": 7})
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	if got := rec.Body.String(); got != "{\"n\":7}\n" {
		t.Fatalf("body = %q", got)
	}
}

func TestRecoverKeepsServing(t *testing.T) {
	var logbuf bytes.Buffer
	calls := 0
	h := Recover(quietLogger(&logbuf), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("boom")
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	srv := httptest.NewServer(AccessLog(quietLogger(&logbuf), nil, h))
	defer srv.Close()

	r1, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500", r1.StatusCode)
	}
	if !strings.Contains(logbuf.String(), "boom") {
		t.Fatalf("panic not logged: %q", logbuf.String())
	}
	if !strings.Contains(logbuf.String(), "goroutine") {
		t.Fatalf("stack not logged: %q", logbuf.String())
	}

	r2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request status = %d, want 200 (server should survive)", r2.StatusCode)
	}
}

func TestRecoverAfterCommitLeavesResponse(t *testing.T) {
	// Once the handler has committed a status, Recover must not stack a
	// second one on top.
	var logbuf bytes.Buffer
	h := AccessLog(quietLogger(&logbuf), nil,
		Recover(quietLogger(&logbuf), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			io.WriteString(w, "partial")
			panic("late boom")
		})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want the committed 202", rec.Code)
	}
	if got := rec.Body.String(); got != "partial" {
		t.Fatalf("body = %q, want the committed prefix only", got)
	}
}

func TestMaxBytes(t *testing.T) {
	h := MaxBytes(16, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.Copy(io.Discard, r.Body); err != nil {
			WriteError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	small, err := http.Post(srv.URL, "text/plain", strings.NewReader("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	small.Body.Close()
	if small.StatusCode != http.StatusOK {
		t.Fatalf("small body status = %d", small.StatusCode)
	}

	big, err := http.Post(srv.URL, "text/plain", strings.NewReader(strings.Repeat("x", 64)))
	if err != nil {
		t.Fatal(err)
	}
	big.Body.Close()
	if big.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("big body status = %d, want 413", big.StatusCode)
	}
}

func TestTimeoutExpires(t *testing.T) {
	lateErr := make(chan error, 1)
	h := Timeout(20*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		// Late write after the deadline must be swallowed.
		_, err := w.Write([]byte("late"))
		lateErr <- err
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "timed out") {
		t.Fatalf("body = %q", body)
	}
	if err := <-lateErr; err != http.ErrHandlerTimeout {
		t.Fatalf("late write error = %v, want ErrHandlerTimeout", err)
	}
}

func TestTimeoutFastPathReplaysResponse(t *testing.T) {
	h := Timeout(time.Second, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		WriteJSON(w, http.StatusCreated, map[string]int{"n": 1})
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusCreated {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("X-Custom") != "yes" {
		t.Fatal("header lost in replay")
	}
	if rec.Body.String() != "{\"n\":1}\n" {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestTimeoutPropagatesPanicToRecover(t *testing.T) {
	var logbuf bytes.Buffer
	h := AccessLog(quietLogger(&logbuf), nil,
		Recover(quietLogger(&logbuf),
			Timeout(time.Second, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				panic("inner boom")
			}))))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 from Recover", rec.Code)
	}
	if !strings.Contains(logbuf.String(), "inner boom") {
		t.Fatalf("panic not logged: %q", logbuf.String())
	}
}

func TestLimiterShedsWithRetryAfter(t *testing.T) {
	l := NewLimiter(1, 2*time.Second)
	entered := make(chan struct{})
	release := make(chan struct{})
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("admitted request status = %d", resp.StatusCode)
		}
	}()
	<-entered // the slot is now held
	if got := l.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}

	shed, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status = %d, want 429", shed.StatusCode)
	}
	if ra := shed.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}

	close(release)
	wg.Wait()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	if l.InFlight() != 0 {
		t.Fatal("nil limiter InFlight != 0")
	}
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestAccessLogFields(t *testing.T) {
	var logbuf bytes.Buffer
	h := AccessLog(quietLogger(&logbuf), func() int { return 3 },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/predict", nil))
	line := logbuf.String()
	for _, want := range []string{"method=POST", "path=/predict", "status=200", "inflight=3", "dur="} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log %q missing %q", line, want)
		}
	}
}

func TestInjectorDeterministicError(t *testing.T) {
	in := NewInjector(Faults{ErrorEvery: 2, ErrorStatus: http.StatusBadGateway})
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	want := []int{200, 502, 200, 502, 200}
	for i, ws := range want {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != ws {
			t.Fatalf("request %d status = %d, want %d", i+1, rec.Code, ws)
		}
	}
	// Disabled injector passes everything through but keeps counting.
	in.SetEnabled(false)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("disabled injector status = %d", rec.Code)
	}
}

func TestInjectorPanicAndLatency(t *testing.T) {
	var logbuf bytes.Buffer
	in := NewInjector(Faults{PanicEvery: 1})
	h := AccessLog(quietLogger(&logbuf), nil,
		Recover(quietLogger(&logbuf), in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("injected panic status = %d, want 500", rec.Code)
	}

	lat := NewInjector(Faults{LatencyEvery: 1, Latency: 30 * time.Millisecond})
	lh := lat.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	start := time.Now()
	rec = httptest.NewRecorder()
	lh.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency injection too fast: %s", d)
	}
}
