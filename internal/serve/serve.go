// Package serve is the resilience layer under cmd/wym-server: a managed
// http.Server lifecycle (bounded connection timeouts, signal-driven
// graceful shutdown with connection draining) plus the middleware stack a
// production matcher needs — panic recovery, per-request timeouts, body
// size limits, concurrency-capped load shedding with 429 + Retry-After,
// structured access logging, and a deterministic fault injector that
// end-to-end tests use to prove all of the above.
//
// The package is HTTP-generic: nothing in it knows about entity matching,
// so any future command (a blocking service, a batch scorer) can reuse it.
//
// Typical wiring, outermost first:
//
//	handler := serve.AccessLog(logger, limiter.InFlight,
//	    serve.Recover(logger, mux))
//	srv := serve.New(serve.Config{Addr: ":8080"}, handler)
//	err := srv.Run(ctx) // ctx from signal.NotifyContext(SIGINT, SIGTERM)
//
// with hot paths inside mux individually wrapped as
//
//	limiter.Middleware(serve.Timeout(d, serve.MaxBytes(n, h)))
package serve

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Config bounds the server's connection handling. Zero fields fall back
// to the defaults below; ShutdownGrace bounds how long Run waits for
// in-flight requests when draining.
type Config struct {
	Addr          string        // listen address (default ":8080")
	ReadTimeout   time.Duration // full-request read deadline (default 15s)
	WriteTimeout  time.Duration // response write deadline (default 60s)
	IdleTimeout   time.Duration // keep-alive idle deadline (default 120s)
	ShutdownGrace time.Duration // drain budget on shutdown (default 15s)
	ErrorLog      *log.Logger   // http.Server error log (default stdlib)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 15 * time.Second
	}
	return c
}

// Server wraps http.Server with explicit lifecycle: Start binds the
// listener (so tests can use ":0" and read the real Addr), Run blocks
// until the context is cancelled and then drains, Shutdown drains on
// demand. Draining reports whether shutdown has begun — readiness probes
// flip to 503 on it so load balancers stop routing before the listener
// closes.
type Server struct {
	cfg      Config
	srv      *http.Server
	ln       net.Listener
	draining atomic.Bool
	serveErr chan error
}

// New builds an unstarted server over the handler.
func New(cfg Config, h http.Handler) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg: cfg,
		srv: &http.Server{
			Addr:         cfg.Addr,
			Handler:      h,
			ReadTimeout:  cfg.ReadTimeout,
			WriteTimeout: cfg.WriteTimeout,
			IdleTimeout:  cfg.IdleTimeout,
			ErrorLog:     cfg.ErrorLog,
		},
		serveErr: make(chan error, 1),
	}
}

// Start binds the listener and begins serving in the background. It
// returns once the address is bound, so Addr is valid immediately after.
func (s *Server) Start() error {
	if s.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { s.serveErr <- s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (resolving ":0"). It is only
// valid after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to the context deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.srv.Shutdown(ctx)
}

// Run starts the server (if Start was not already called) and blocks
// until either the server fails or ctx is cancelled — typically by
// SIGINT/SIGTERM via signal.NotifyContext. On cancellation it drains
// in-flight requests for up to ShutdownGrace and returns the shutdown
// error, nil on a clean drain.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	select {
	case err := <-s.serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	err := s.Shutdown(sctx)
	<-s.serveErr // reap the Serve goroutine (ErrServerClosed)
	return err
}
