package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// okHandler is the innermost handler the injector wraps in these tests.
var okHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, "ok")
})

func hit(t *testing.T, h http.Handler) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	return rec
}

func TestInjectorDeterministicSequencing(t *testing.T) {
	// Errors on every 3rd request: the schedule must be exact, not
	// probabilistic — that is the injector's whole contract.
	in := NewInjector(Faults{ErrorEvery: 3, ErrorStatus: http.StatusBadGateway})
	h := in.Middleware(okHandler)
	for i := 1; i <= 9; i++ {
		rec := hit(t, h)
		want := http.StatusOK
		if i%3 == 0 {
			want = http.StatusBadGateway
		}
		if rec.Code != want {
			t.Fatalf("request %d status = %d, want %d", i, rec.Code, want)
		}
	}
	if got := in.Count(); got != 9 {
		t.Fatalf("Count() = %d, want 9", got)
	}
}

func TestInjectorResetRestartsNumbering(t *testing.T) {
	in := NewInjector(Faults{ErrorEvery: 2})
	h := in.Middleware(okHandler)
	if rec := hit(t, h); rec.Code != http.StatusOK {
		t.Fatalf("request 1 status = %d", rec.Code)
	}
	in.Reset()
	if got := in.Count(); got != 0 {
		t.Fatalf("Count() after Reset = %d, want 0", got)
	}
	// Post-reset request 1 is odd again, so it passes; request 2 errors.
	if rec := hit(t, h); rec.Code != http.StatusOK {
		t.Fatalf("post-reset request 1 status = %d", rec.Code)
	}
	if rec := hit(t, h); rec.Code != http.StatusInternalServerError {
		t.Fatalf("post-reset request 2 status = %d, want the default 500", rec.Code)
	}
}

func TestInjectorSetEnabledSuspendsFaultsButCounts(t *testing.T) {
	in := NewInjector(Faults{ErrorEvery: 1})
	h := in.Middleware(okHandler)
	in.SetEnabled(false)
	for i := 0; i < 3; i++ {
		if rec := hit(t, h); rec.Code != http.StatusOK {
			t.Fatalf("disabled injector fired (status %d)", rec.Code)
		}
	}
	if got := in.Count(); got != 3 {
		t.Fatalf("disabled injector stopped counting: %d", got)
	}
	in.SetEnabled(true)
	if rec := hit(t, h); rec.Code != http.StatusInternalServerError {
		t.Fatalf("re-enabled injector did not fire (status %d)", rec.Code)
	}
}

func TestInjectorSetFaultsSwapsPlanMidstream(t *testing.T) {
	in := NewInjector(Faults{ErrorEvery: 2, ErrorStatus: http.StatusBadGateway})
	h := in.Middleware(okHandler)
	if rec := hit(t, h); rec.Code != http.StatusOK {
		t.Fatalf("request 1 status = %d", rec.Code)
	}
	if rec := hit(t, h); rec.Code != http.StatusBadGateway {
		t.Fatalf("request 2 status = %d, want 502", rec.Code)
	}
	// Swap to every-3rd with the default status; the counter keeps
	// running, so requests 3 and 6 trigger under the new plan.
	in.SetFaults(Faults{ErrorEvery: 3})
	for i := 3; i <= 6; i++ {
		rec := hit(t, h)
		want := http.StatusOK
		if i%3 == 0 {
			want = http.StatusInternalServerError // the swapped plan's default status
		}
		if rec.Code != want {
			t.Fatalf("request %d status = %d after plan swap, want %d", i, rec.Code, want)
		}
	}
}

func TestInjectorLatencyRespectsCancel(t *testing.T) {
	in := NewInjector(Faults{LatencyEvery: 1, Latency: time.Hour})
	h := in.Middleware(okHandler)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // already canceled: the stall must not block at all
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req.WithContext(ctx))
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("injected latency ignored the canceled request context")
	}
}

// TestInjectorConcurrentUse hammers one injector from many goroutines:
// the counter must stay exact (race detector covers the memory model,
// the total covers lost updates).
func TestInjectorConcurrentUse(t *testing.T) {
	in := NewInjector(Faults{ErrorEvery: 4})
	h := in.Middleware(okHandler)
	const (
		workers = 8
		each    = 50
	)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errors int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
				if rec.Code == http.StatusInternalServerError {
					mu.Lock()
					errors++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	total := uint64(workers * each)
	if got := in.Count(); got != total {
		t.Fatalf("Count() = %d, want %d", got, total)
	}
	// Exactly every 4th of the interleaved sequence errored.
	if want := int(total / 4); errors != want {
		t.Fatalf("injected errors = %d, want %d", errors, want)
	}
}

func TestNilInjectorIsANoOp(t *testing.T) {
	var in *Injector
	in.SetEnabled(true)
	in.SetFaults(Faults{ErrorEvery: 1})
	in.Reset()
	if got := in.Count(); got != 0 {
		t.Fatalf("nil Count() = %d", got)
	}
	if rec := hit(t, in.Middleware(okHandler)); rec.Code != http.StatusOK {
		t.Fatalf("nil injector altered the response: %d", rec.Code)
	}
}

func TestLimiterRetryAfterConfigurable(t *testing.T) {
	l := NewLimiter(1, 2*time.Second)
	if got := l.RetryAfter(); got != 2*time.Second {
		t.Fatalf("RetryAfter() = %v, want 2s", got)
	}
	// Sub-second hints round up to the 1s floor.
	l.SetRetryAfter(10 * time.Millisecond)
	if got := l.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter() after sub-second set = %v, want the 1s floor", got)
	}
	l.SetRetryAfter(7 * time.Second)

	// Occupy the only slot, then shed a request and read the header.
	release := make(chan struct{})
	entered := make(chan struct{})
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}))
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/", nil))
	}()
	<-entered
	rec := hit(t, h)
	close(release)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated limiter status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After header = %q, want the runtime-set 7", got)
	}
	if !strings.Contains(rec.Body.String(), "capacity") {
		t.Fatalf("shed body %q", rec.Body.String())
	}

	var nilL *Limiter
	nilL.SetRetryAfter(time.Minute)
	if got := nilL.RetryAfter(); got != 0 {
		t.Fatalf("nil limiter RetryAfter() = %v, want 0", got)
	}
}
