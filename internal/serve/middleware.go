package serve

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code and byte count written through
// a ResponseWriter, and whether the header has been committed — Recover
// uses the latter to avoid a superfluous WriteHeader after a handler
// that panicked mid-response.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards streaming flushes so the recorder stays transparent.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Committed reports whether a status line has been sent.
func (r *statusRecorder) Committed() bool { return r.status != 0 }

// committer is satisfied by statusRecorder; Recover probes for it to
// decide whether a 500 can still be written.
type committer interface{ Committed() bool }

// Recover turns a handler panic into a logged 500 instead of a dead
// process: the decision-unit, feature, and classifier layers guard their
// invariants with panic, and one malformed request must not take down
// the server. http.ErrAbortHandler passes through untouched (it is the
// sanctioned way to abort a response).
func Recover(logger *log.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			logger.Printf("serve: panic handling %s %s: %v\n%s",
				r.Method, r.URL.Path, p, debug.Stack())
			if c, ok := w.(committer); ok && c.Committed() {
				return // response already underway; nothing sane to send
			}
			WriteError(w, http.StatusInternalServerError, "internal server error")
		}()
		next.ServeHTTP(w, r)
	})
}

// MaxBytes caps the request body at n bytes. Reads past the cap fail
// with *http.MaxBytesError, which the decoding layer maps to 413.
// Non-positive n disables the cap.
func MaxBytes(n int64, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, n)
		next.ServeHTTP(w, r)
	})
}

// AccessLog emits one structured line per request: method, path, status,
// response bytes, latency, and the current in-flight count (from the
// limiter, if any — pass nil otherwise). It installs the statusRecorder
// that Recover relies on, so it belongs outermost on the stack.
func AccessLog(logger *log.Logger, inflight func() int, next http.Handler) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		fl := 0
		if inflight != nil {
			fl = inflight()
		}
		logger.Printf("method=%s path=%s status=%d bytes=%d dur=%s inflight=%d",
			r.Method, r.URL.Path, rec.status, rec.bytes,
			time.Since(start).Round(time.Microsecond), fl)
	})
}
