package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Faults configures deterministic fault injection. Each rule fires on
// every Nth request through the injector (1-based count), so a test can
// predict exactly which request panics, errors, or stalls. Zero fields
// disable the corresponding rule.
type Faults struct {
	PanicEvery   int           // panic on requests n where n % PanicEvery == 0
	ErrorEvery   int           // inject ErrorStatus likewise
	ErrorStatus  int           // status for injected errors (default 500)
	LatencyEvery int           // add Latency likewise
	Latency      time.Duration // injected stall before the handler runs
}

// Injector is a test-only middleware that injects the configured faults
// into the request path. It is deliberately deterministic — a shared
// counter, no randomness — so fault-injection tests assert exact
// behavior instead of retrying until the dice cooperate. Production
// wiring simply never constructs one (a nil Injector is a no-op).
type Injector struct {
	mu      sync.Mutex
	cfg     Faults
	n       uint64
	enabled bool
}

// NewInjector builds an enabled injector over the fault plan.
func NewInjector(cfg Faults) *Injector {
	if cfg.ErrorStatus == 0 {
		cfg.ErrorStatus = http.StatusInternalServerError
	}
	return &Injector{cfg: cfg, enabled: true}
}

// SetEnabled turns injection on or off without rewiring the stack.
func (in *Injector) SetEnabled(on bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.enabled = on
}

// Reset zeroes the request counter so a test's numbering starts fresh.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.n = 0
}

// SetFaults swaps the fault plan mid-test without rewiring the stack;
// the request counter keeps running so numbering stays continuous. A
// zero ErrorStatus defaults to 500 as in NewInjector.
func (in *Injector) SetFaults(cfg Faults) {
	if in == nil {
		return
	}
	if cfg.ErrorStatus == 0 {
		cfg.ErrorStatus = http.StatusInternalServerError
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cfg = cfg
}

// Count reports how many requests have passed through the injector
// since construction or the last Reset. Safe on a nil Injector.
func (in *Injector) Count() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// tick advances the counter and snapshots the plan.
func (in *Injector) tick() (n uint64, cfg Faults, on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.n++
	return in.n, in.cfg, in.enabled
}

// Middleware applies the fault plan ahead of next. Order of effects on
// a single request: latency first (so a stalled request also counts
// against in-flight caps stacked outside), then panic, then error.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, cfg, on := in.tick()
		if !on {
			next.ServeHTTP(w, r)
			return
		}
		if cfg.LatencyEvery > 0 && n%uint64(cfg.LatencyEvery) == 0 {
			select {
			case <-time.After(cfg.Latency):
			case <-r.Context().Done():
			}
		}
		if cfg.PanicEvery > 0 && n%uint64(cfg.PanicEvery) == 0 {
			panic(fmt.Sprintf("faults: injected panic on request %d", n))
		}
		if cfg.ErrorEvery > 0 && n%uint64(cfg.ErrorEvery) == 0 {
			WriteError(w, cfg.ErrorStatus, fmt.Sprintf("faults: injected error on request %d", n))
			return
		}
		next.ServeHTTP(w, r)
	})
}
