package serve

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
)

// WriteJSON encodes v into a buffer before touching the ResponseWriter,
// so an encoding failure yields a clean 500 instead of a success status
// followed by a truncated body (headers are committed on first write —
// encode-then-write is the only ordering that can still change them).
func WriteJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		log.Printf("serve: encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"encoding response failed"}` + "\n"))
		return
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(status)
	w.Write(buf)
}

// WriteError writes a JSON error body with the given status.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, map[string]string{"error": msg})
}
