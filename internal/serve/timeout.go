package serve

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"time"
)

// Timeout bounds one request's handling time. The handler runs with a
// deadline-carrying context and writes into a buffered writer; if it
// finishes in time the buffer is replayed to the client, otherwise the
// client gets 503 and the handler's late writes are discarded (it keeps
// running until it observes ctx.Done, but can no longer corrupt the
// response). Panics in the handler propagate to the caller so Recover —
// stacked outside — still sees them. Non-positive d disables the bound.
//
// This mirrors http.TimeoutHandler but returns the JSON error shape the
// rest of the API speaks.
func Timeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		tw := &timeoutWriter{h: make(http.Header)}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
			}()
			next.ServeHTTP(tw, r)
			close(done)
		}()
		select {
		case p := <-panicked:
			panic(p)
		case <-done:
			tw.replay(w)
		case <-ctx.Done():
			tw.abandon()
			WriteError(w, http.StatusServiceUnavailable, "request timed out")
		}
	})
}

// timeoutWriter buffers a response so it can be committed atomically
// after the handler wins the race against the deadline.
type timeoutWriter struct {
	mu       sync.Mutex
	h        http.Header
	buf      bytes.Buffer
	status   int
	timedOut bool
}

func (tw *timeoutWriter) Header() http.Header { return tw.h }

func (tw *timeoutWriter) WriteHeader(code int) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.status == 0 {
		tw.status = code
	}
}

func (tw *timeoutWriter) Write(b []byte) (int, error) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		return 0, http.ErrHandlerTimeout
	}
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	return tw.buf.Write(b)
}

// abandon marks the response as forfeited; later handler writes error.
func (tw *timeoutWriter) abandon() {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	tw.timedOut = true
}

// replay commits the buffered response to the real writer.
func (tw *timeoutWriter) replay(w http.ResponseWriter) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	dst := w.Header()
	for k, v := range tw.h {
		dst[k] = v
	}
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	w.WriteHeader(tw.status)
	w.Write(tw.buf.Bytes())
}
