package serve

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"wym/internal/obs"
)

// Limiter sheds load once a fixed number of requests are in flight:
// request max+1 is answered immediately with 429 and a Retry-After hint
// instead of queueing behind work the server cannot absorb. Matching is
// CPU-bound, so beyond roughly GOMAXPROCS concurrent predicts extra
// admission only adds latency for everyone — failing fast keeps tail
// latency bounded and lets well-behaved clients back off.
//
// A nil Limiter admits everything (convenient for wiring paths that
// must never shed, like health probes).
type Limiter struct {
	sem        chan struct{}
	retryAfter atomic.Int64 // whole seconds advertised on shed responses
	sheds      *obs.Counter // optional; counts 429 responses
}

// NewLimiter admits up to max concurrent requests and advertises
// retryAfter (rounded up to whole seconds, minimum 1) on shed responses.
// Non-positive max returns nil — an unlimited limiter.
func NewLimiter(max int, retryAfter time.Duration) *Limiter {
	if max <= 0 {
		return nil
	}
	l := &Limiter{sem: make(chan struct{}, max)}
	l.SetRetryAfter(retryAfter)
	return l
}

// SetRetryAfter changes the advertised backoff hint at runtime (rounded
// to whole seconds, minimum 1) — operators tune it while shedding to
// push clients and routers further away without a restart. Safe on a
// nil Limiter and safe concurrently with serving.
func (l *Limiter) SetRetryAfter(d time.Duration) {
	if l == nil {
		return
	}
	secs := int64(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	l.retryAfter.Store(secs)
}

// RetryAfter reports the currently advertised backoff hint. A nil
// Limiter never sheds, so it reports 0.
func (l *Limiter) RetryAfter() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.retryAfter.Load()) * time.Second
}

// CountSheds attaches a counter incremented on every shed (429)
// response. Attach before the limiter starts serving; safe on a nil
// Limiter (an unlimited limiter never sheds).
func (l *Limiter) CountSheds(c *obs.Counter) {
	if l != nil {
		l.sheds = c
	}
}

// InFlight returns the number of requests currently admitted. Safe on a
// nil Limiter (always 0); AccessLog takes it as the inflight probe.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// Middleware admits or sheds. Admission is a non-blocking semaphore
// acquire: there is deliberately no queue, because queued requests
// would stack latency invisibly until the client gave up anyway.
func (l *Limiter) Middleware(next http.Handler) http.Handler {
	if l == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case l.sem <- struct{}{}:
			defer func() { <-l.sem }()
			next.ServeHTTP(w, r)
		default:
			l.sheds.Inc() // nil-safe when no counter is attached
			w.Header().Set("Retry-After", strconv.FormatInt(l.retryAfter.Load(), 10))
			WriteError(w, http.StatusTooManyRequests, "server at capacity, retry later")
		}
	})
}
