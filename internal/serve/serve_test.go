package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Addr:          "127.0.0.1:0",
		ReadTimeout:   5 * time.Second,
		WriteTimeout:  5 * time.Second,
		IdleTimeout:   5 * time.Second,
		ShutdownGrace: 5 * time.Second,
	}
}

func TestServerStartShutdown(t *testing.T) {
	s := New(testConfig(), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}
	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !s.Draining() {
		t.Fatal("shut-down server does not report draining")
	}
	cl := &http.Client{Timeout: time.Second}
	if _, err := cl.Get("http://" + s.Addr() + "/"); err == nil {
		t.Fatal("connection succeeded after shutdown")
	}
}

func TestServerDrainsInFlightRequests(t *testing.T) {
	started := make(chan struct{})
	var finished atomic.Bool
	s := New(testConfig(), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(150 * time.Millisecond)
		finished.Store(true)
		WriteJSON(w, http.StatusOK, map[string]bool{"done": true})
	}))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		resp.Body.Close()
		got <- result{status: resp.StatusCode}
	}()

	<-started // request is in flight; begin draining
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown while draining: %v", err)
	}
	if !finished.Load() {
		t.Fatal("shutdown returned before the in-flight handler finished")
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", r.status)
	}
}

func TestServerRunStopsOnContextCancel(t *testing.T) {
	s := New(testConfig(), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}

func TestServerStartFailsOnBusyAddr(t *testing.T) {
	first := New(testConfig(), http.NotFoundHandler())
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		first.Shutdown(ctx)
	}()

	cfg := testConfig()
	cfg.Addr = first.Addr()
	second := New(cfg, http.NotFoundHandler())
	if err := second.Run(context.Background()); err == nil {
		t.Fatal("Run on a busy address did not fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Addr == "" || c.ReadTimeout <= 0 || c.WriteTimeout <= 0 ||
		c.IdleTimeout <= 0 || c.ShutdownGrace <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// And the raw recorder passthrough keeps working for plain handlers.
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	rec.Write([]byte("x"))
	if rec.status != http.StatusOK || rec.bytes != 1 || !rec.Committed() {
		t.Fatalf("recorder state = %+v", rec)
	}
}
