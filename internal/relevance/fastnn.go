package relevance

import (
	"fmt"
	"math"
	"sync"

	"wym/internal/arena"
	"wym/internal/nn"
	"wym/internal/vec"
)

// FastNN is the arena-path relevance scorer: the same network as NN, but
// with weights flattened into row-major float32 with each row zero-padded
// to a multiple of 8, scored four decision units at a time through the
// vec.Dot4F32 kernel. It exists for the serving hot path — Score runs an
// order of magnitude faster than the per-unit float64 forward pass — and
// its float32 arithmetic is pinned against the float64 scorer by the
// prediction-equivalence goldens in internal/core.
//
// A FastNN is built either from a trained float64 network (NewFastNN, at
// `wym model convert` time) or directly over the weight views of an
// opened arena (FastNNFromSpec, at load time — zero copies). It is safe
// for concurrent use; per-call scratch is pooled.
type FastNN struct {
	layers []fastLayer
	dim    int // embedding dimension; network input is 2*dim
	maxPad int // widest padded row across all layer inputs and outputs
	pool   sync.Pool
}

type fastLayer struct {
	in, out   int
	inPadded  int // multiple of 8, rows of w are this wide
	outPadded int // multiple of 8, activation rows are this wide
	act       uint32
	w         []float32 // [out][inPadded] row-major
	b         []float32 // [out]
}

type fastScratch struct {
	x, y []float32
}

func roundUp8(n int) int { return (n + 7) &^ 7 }

// NewFastNN converts a trained float64 scorer into the padded float32
// layout. The conversion narrows every weight once; no further precision
// is lost at score time beyond the float32 arithmetic itself.
func NewFastNN(s *NN) (*FastNN, error) {
	if s == nil || s.net == nil || len(s.net.Layers) == 0 {
		return nil, fmt.Errorf("relevance: no trained network to convert")
	}
	f := &FastNN{dim: s.dim}
	for li, l := range s.net.Layers {
		out, in := len(l.W), 0
		if out > 0 {
			in = len(l.W[0])
		}
		if out == 0 || in == 0 {
			return nil, fmt.Errorf("relevance: layer %d has empty weights", li)
		}
		act, err := actID(l.Act)
		if err != nil {
			return nil, fmt.Errorf("relevance: layer %d: %w", li, err)
		}
		fl := fastLayer{
			in: in, out: out,
			inPadded: roundUp8(in), outPadded: roundUp8(out),
			act: act,
			b:   make([]float32, out),
		}
		fl.w = make([]float32, out*fl.inPadded)
		for i, row := range l.W {
			dst := fl.w[i*fl.inPadded:]
			for j, wv := range row {
				dst[j] = float32(wv)
			}
			fl.b[i] = float32(l.B[i])
		}
		f.layers = append(f.layers, fl)
	}
	return f, f.finish()
}

// FastNNFromSpec wraps an arena scorer section without copying: the
// weight slices are the file's own views, so a loaded model's scorer
// costs no decode and no allocation beyond the struct itself.
func FastNNFromSpec(sp *arena.Scorer) (*FastNN, error) {
	if sp == nil || len(sp.Layers) == 0 {
		return nil, fmt.Errorf("relevance: arena has no scorer")
	}
	f := &FastNN{}
	for li, l := range sp.Layers {
		if l.InPadded%8 != 0 {
			return nil, fmt.Errorf("relevance: arena scorer layer %d: padded width %d not a multiple of 8", li, l.InPadded)
		}
		f.layers = append(f.layers, fastLayer{
			in: l.In, out: l.Out,
			inPadded: l.InPadded, outPadded: roundUp8(l.Out),
			act: l.Act, w: l.W, b: l.B,
		})
	}
	if in0 := f.layers[0].in; in0%2 != 0 {
		return nil, fmt.Errorf("relevance: arena scorer input width %d is odd", in0)
	}
	f.dim = f.layers[0].in / 2
	return f, f.finish()
}

// finish validates the layer chain and sizes the scratch pool.
func (f *FastNN) finish() error {
	for li := 1; li < len(f.layers); li++ {
		if f.layers[li].in != f.layers[li-1].out {
			return fmt.Errorf("relevance: scorer layer %d input %d does not chain from output %d",
				li, f.layers[li].in, f.layers[li-1].out)
		}
	}
	if last := f.layers[len(f.layers)-1]; last.out != 1 {
		return fmt.Errorf("relevance: scorer output width %d, want 1", last.out)
	}
	for _, l := range f.layers {
		if l.inPadded > f.maxPad {
			f.maxPad = l.inPadded
		}
		if l.outPadded > f.maxPad {
			f.maxPad = l.outPadded
		}
	}
	f.pool.New = func() any { return &fastScratch{} }
	return nil
}

// Dim returns the embedding dimension the scorer expects.
func (f *FastNN) Dim() int { return f.dim }

// Spec returns the network in arena layout, sharing the weight slices.
func (f *FastNN) Spec() *arena.Scorer {
	sp := &arena.Scorer{}
	for _, l := range f.layers {
		sp.Layers = append(sp.Layers, arena.ScorerLayer{
			In: l.in, Out: l.out, InPadded: l.inPadded, Act: l.act,
			W: l.w, B: l.b,
		})
	}
	return sp
}

// Score implements Scorer. It batches the record's units in groups of
// four through every layer; outputs are clamped to [-1, 1] like NN.Score.
func (f *FastNN) Score(rec *Record) []float64 {
	u := len(rec.Units)
	out := make([]float64, u)
	if u == 0 {
		return out
	}
	ub := (u + 3) &^ 3 // unit rows padded to a multiple of 4
	sc := f.pool.Get().(*fastScratch)
	need := ub * f.maxPad
	if cap(sc.x) < need {
		sc.x = make([]float32, need)
		sc.y = make([]float32, need)
	}
	x, y := sc.x[:need], sc.y[:need]

	f.featurize(rec, x, ub)
	for _, l := range f.layers {
		l.forward(x, y, ub)
		x, y = y, x
	}
	// After the swap, x holds the final layer's activations.
	lastPad := f.layers[len(f.layers)-1].outPadded
	for i := 0; i < u; i++ {
		v := float64(x[i*lastPad])
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		out[i] = v
	}
	f.pool.Put(sc)
	return out
}

// featurize writes each unit's mean ⊕ |difference| features — the same
// arithmetic as Record.Features, narrowed to float32 — into consecutive
// padded rows of x, zeroing the padding and the pad units' rows.
func (f *FastNN) featurize(rec *Record, x []float32, ub int) {
	d := f.dim
	p := f.layers[0].inPadded
	for i := range rec.Units {
		row := x[i*p : (i+1)*p]
		un := rec.Units[i]
		var l, r []float64
		if un.Left >= 0 {
			l = rec.LeftVecs[un.Left]
		}
		if un.Right >= 0 {
			r = rec.RightVecs[un.Right]
		}
		switch {
		case l != nil && r != nil:
			for j := 0; j < d; j++ {
				row[j] = float32((l[j] + r[j]) / 2)
				row[d+j] = float32(math.Abs(l[j] - r[j]))
			}
		case l != nil:
			for j := 0; j < d; j++ {
				row[j] = float32(l[j] / 2)
				row[d+j] = float32(math.Abs(l[j]))
			}
		case r != nil:
			for j := 0; j < d; j++ {
				row[j] = float32(r[j] / 2)
				row[d+j] = float32(math.Abs(r[j]))
			}
		default:
			clear(row[:2*d])
		}
		clear(row[2*d:])
	}
	clear(x[len(rec.Units)*p : ub*p])
}

// forward computes one dense layer over ub unit rows (ub a multiple of
// 4): y[u][i] = act(w[i]·x[u] + b[i]), pad columns zeroed.
func (l *fastLayer) forward(x, y []float32, ub int) {
	p, q := l.inPadded, l.outPadded
	for u := 0; u < ub; u += 4 {
		x0 := x[u*p : (u+1)*p]
		x1 := x[(u+1)*p : (u+2)*p]
		x2 := x[(u+2)*p : (u+3)*p]
		x3 := x[(u+3)*p : (u+4)*p]
		y0 := y[u*q : (u+1)*q]
		y1 := y[(u+1)*q : (u+2)*q]
		y2 := y[(u+2)*q : (u+3)*q]
		y3 := y[(u+3)*q : (u+4)*q]
		for i := 0; i < l.out; i++ {
			w := l.w[i*p : (i+1)*p]
			s0, s1, s2, s3 := vec.Dot4F32(w, x0, x1, x2, x3)
			bi := l.b[i]
			y0[i] = applyAct(l.act, s0+bi)
			y1[i] = applyAct(l.act, s1+bi)
			y2[i] = applyAct(l.act, s2+bi)
			y3[i] = applyAct(l.act, s3+bi)
		}
		clear(y0[l.out:])
		clear(y1[l.out:])
		clear(y2[l.out:])
		clear(y3[l.out:])
	}
}

func applyAct(act uint32, v float32) float32 {
	switch act {
	case arena.ActReLU:
		if v < 0 {
			return 0
		}
		return v
	case arena.ActTanh:
		return float32(math.Tanh(float64(v)))
	case arena.ActSigmoid:
		return float32(1 / (1 + math.Exp(-float64(v))))
	default:
		return v
	}
}

func actID(a nn.Activation) (uint32, error) {
	switch a {
	case nn.Identity:
		return arena.ActIdentity, nil
	case nn.ReLU:
		return arena.ActReLU, nil
	case nn.Tanh:
		return arena.ActTanh, nil
	case nn.Sigmoid:
		return arena.ActSigmoid, nil
	default:
		return 0, fmt.Errorf("unsupported activation %d", a)
	}
}
