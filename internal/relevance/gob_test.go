package relevance

import (
	"bytes"
	"encoding/gob"
	"testing"

	"wym/internal/nn"
)

func TestGobRoundTripScorers(t *testing.T) {
	ts := NewTrainingSet(DefaultTargetConfig())
	rec := makeRecord("camera zoom", "camera lens")
	ts.Add(rec, 1)
	nnScorer, err := TrainNN(ts, 48, NNConfig{Hidden: []int{8}, Seed: 1,
		Train: nn.Config{Epochs: 3, BatchSize: 4, LR: 1e-3, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for name, scorer := range map[string]Scorer{
		"nn": nnScorer, "binary": Binary{}, "cosine": Cosine{},
	} {
		scorer := scorer
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			holder := struct{ S Scorer }{S: scorer}
			if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
				t.Fatal(err)
			}
			var out struct{ S Scorer }
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				t.Fatal(err)
			}
			a, b := scorer.Score(rec), out.S.Score(rec)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("score %d diverged: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}
