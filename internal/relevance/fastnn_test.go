package relevance

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"wym/internal/tokenize"
	"wym/internal/units"
	"wym/internal/vec"
)

// syntheticRecord builds a record with nl left tokens, nr right tokens
// and a mix of paired and unpaired units over unit-norm embeddings.
func syntheticRecord(rng *rand.Rand, dim, nl, nr int) *Record {
	mk := func(n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			out[i] = vec.Normalize(v)
		}
		return out
	}
	toks := func(side string, n int) []tokenize.Token {
		out := make([]tokenize.Token, n)
		for i := range out {
			out[i] = tokenize.Token{Text: fmt.Sprintf("%s%d", side, i)}
		}
		return out
	}
	rec := &Record{
		Left: toks("l", nl), Right: toks("r", nr),
		LeftVecs: mk(nl), RightVecs: mk(nr),
	}
	for i := 0; i < nl; i++ {
		if i < nr {
			rec.Units = append(rec.Units, units.Unit{Kind: units.Paired, Left: i, Right: i})
		} else {
			rec.Units = append(rec.Units, units.Unit{Kind: units.UnpairedLeft, Left: i, Right: -1})
		}
	}
	for j := nl; j < nr; j++ {
		rec.Units = append(rec.Units, units.Unit{Kind: units.UnpairedRight, Left: -1, Right: j})
	}
	return rec
}

func trainedScorer(tb testing.TB, dim int) *NN {
	tb.Helper()
	rng := rand.New(rand.NewSource(5))
	ts := NewTrainingSet(DefaultTargetConfig())
	for i := 0; i < 40; i++ {
		rec := syntheticRecord(rng, dim, 3+rng.Intn(3), 3+rng.Intn(3))
		for j := range rec.Units {
			rec.Units[j].Sim = rng.Float64()
		}
		ts.Add(rec, i%2)
	}
	s, err := TrainNN(ts, dim, NNConfig{Hidden: []int{20, 8}, Seed: 1})
	if err != nil {
		tb.Fatalf("TrainNN: %v", err)
	}
	return s
}

func TestFastNNMatchesNN(t *testing.T) {
	const dim = 12
	s := trainedScorer(t, dim)
	fast, err := NewFastNN(s)
	if err != nil {
		t.Fatalf("NewFastNN: %v", err)
	}
	if fast.Dim() != dim {
		t.Fatalf("Dim = %d, want %d", fast.Dim(), dim)
	}
	rng := rand.New(rand.NewSource(9))
	// Unit counts cover every batch-padding case: 0..5 plus a larger one.
	for _, nu := range []struct{ nl, nr int }{{0, 0}, {1, 0}, {1, 1}, {2, 3}, {4, 4}, {5, 2}, {9, 13}} {
		rec := syntheticRecord(rng, dim, nu.nl, nu.nr)
		want := s.Score(rec)
		got := fast.Score(rec)
		if len(got) != len(want) {
			t.Fatalf("nl=%d nr=%d: %d scores, want %d", nu.nl, nu.nr, len(got), len(want))
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-4 {
				t.Fatalf("nl=%d nr=%d unit %d: fast %g vs nn %g (Δ %g)", nu.nl, nu.nr, i, got[i], want[i], d)
			}
		}
	}
}

func TestFastNNSpecRoundTrip(t *testing.T) {
	const dim = 12
	s := trainedScorer(t, dim)
	fast, err := NewFastNN(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FastNNFromSpec(fast.Spec())
	if err != nil {
		t.Fatalf("FastNNFromSpec: %v", err)
	}
	if back.Dim() != dim {
		t.Fatalf("round-tripped Dim = %d", back.Dim())
	}
	rec := syntheticRecord(rand.New(rand.NewSource(2)), dim, 4, 5)
	a, b := fast.Score(rec), back.Score(rec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unit %d: %g != %g after spec round-trip", i, a[i], b[i])
		}
	}
}

func TestFastNNRejectsMalformedSpecs(t *testing.T) {
	if _, err := FastNNFromSpec(nil); err == nil {
		t.Fatal("accepted nil spec")
	}
	fast, err := NewFastNN(trainedScorer(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	sp := fast.Spec()
	sp.Layers[1].In++ // break the chain
	if _, err := FastNNFromSpec(sp); err == nil {
		t.Fatal("accepted broken layer chain")
	}
}

func TestFastNNConcurrentScore(t *testing.T) {
	const dim = 12
	fast, err := NewFastNN(trainedScorer(t, dim))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	recs := make([]*Record, 8)
	want := make([][]float64, len(recs))
	for i := range recs {
		recs[i] = syntheticRecord(rng, dim, 2+i, 3+i/2)
		want[i] = fast.Score(recs[i])
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for iter := 0; iter < 50; iter++ {
				for i, rec := range recs {
					got := fast.Score(rec)
					for j := range got {
						if got[j] != want[i][j] {
							done <- fmt.Errorf("rec %d unit %d: %g != %g", i, j, got[j], want[i][j])
							return
						}
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkFastNNScore(b *testing.B) {
	const dim = 96
	s := trainedScorer(b, dim)
	fast, err := NewFastNN(s)
	if err != nil {
		b.Fatal(err)
	}
	rec := syntheticRecord(rand.New(rand.NewSource(1)), dim, 12, 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fast.Score(rec)
	}
}
