// Package relevance implements the decision-unit relevance scorer (§4.2 of
// the paper). A relevance score in [-1, 1] measures how strongly a unit
// pushes, in isolation, toward a match (+1) or non-match (-1) decision.
//
// The production scorer is a feed-forward regression network trained on
// heuristic targets built with Equations 2 and 3: unit-level labels are
// derived from the record label and the unit's embedding similarity,
// neutralized when they would contradict each other (challenge R1), and
// averaged over every occurrence of the same token pair in the dataset.
// Unpaired units are treated as paired with a zero-embedded [UNP] token
// (challenge R5); the mean ⊕ |difference| featurization makes the score
// symmetric (challenge R3).
//
// The package also provides the ablation scorers of Table 4: Binary (1 for
// paired, 0 for unpaired) and Cosine (the raw embedding similarity).
package relevance

import (
	"context"
	"fmt"

	"wym/internal/nn"
	"wym/internal/tokenize"
	"wym/internal/units"
	"wym/internal/vec"
)

// Record packages one EM record prepared for scoring: its decision units
// and the contextualized token embeddings they index.
type Record struct {
	Units               []units.Unit
	Left, Right         []tokenize.Token
	LeftVecs, RightVecs [][]float64
}

// Dim returns the embedding dimension of the record (0 when it has no
// tokens on either side).
func (r *Record) Dim() int {
	if len(r.LeftVecs) > 0 {
		return len(r.LeftVecs[0])
	}
	if len(r.RightVecs) > 0 {
		return len(r.RightVecs[0])
	}
	return 0
}

// UnitVectors returns the unit's left and right embedding; the absent side
// of an unpaired unit is the zero vector ([UNP]).
func (r *Record) UnitVectors(i int) (l, rv []float64) {
	u := r.Units[i]
	d := r.Dim()
	zero := func() []float64 { return make([]float64, d) }
	if u.Left >= 0 {
		l = r.LeftVecs[u.Left]
	} else {
		l = zero()
	}
	if u.Right >= 0 {
		rv = r.RightVecs[u.Right]
	} else {
		rv = zero()
	}
	return l, rv
}

// Features returns the scorer input for unit i: mean(l, r) ⊕ |l - r|.
// The representation is invariant to swapping l and r, which guarantees
// the symmetry requirement on paired units.
func (r *Record) Features(i int) []float64 {
	l, rv := r.UnitVectors(i)
	return vec.Concat(vec.Mean(l, rv), vec.AbsDiff(l, rv))
}

// Scorer assigns one relevance score in [-1, 1] per unit of a record.
type Scorer interface {
	Score(rec *Record) []float64
}

// Binary is the Table 4 ablation scorer: 1 for paired units, 0 for
// unpaired ones.
type Binary struct{}

// Score implements Scorer.
func (Binary) Score(rec *Record) []float64 {
	out := make([]float64, len(rec.Units))
	for i, u := range rec.Units {
		if u.Kind == units.Paired {
			out[i] = 1
		}
	}
	return out
}

// Cosine is the Table 4 ablation scorer that returns the raw embedding
// cosine similarity of the unit's tokens. Unpaired units score 0: the
// cosine against the zero-embedded [UNP] token.
type Cosine struct{}

// Score implements Scorer.
func (Cosine) Score(rec *Record) []float64 {
	out := make([]float64, len(rec.Units))
	for i := range rec.Units {
		l, r := rec.UnitVectors(i)
		out[i] = vec.Cosine(l, r)
	}
	return out
}

// TargetConfig holds the α and β similarity thresholds of Equation 2.
type TargetConfig struct {
	// Alpha: in a matching record, a paired unit counts as match evidence
	// (target 1) only when its similarity reaches Alpha; below it the
	// target is neutralized to 0.
	Alpha float64
	// Beta: in a non-matching record, a paired unit counts as non-match
	// evidence (target -1) only when its similarity is below Beta; above
	// it — tokens that genuinely mean the same thing in different
	// entities — the target is neutralized to 0 (challenge R1).
	Beta float64
}

// DefaultTargetConfig returns the repo defaults: α = 0.65, β = 0.8.
// β sits above the pairing thresholds so that only strongly similar pairs
// inside non-matching records are excused.
func DefaultTargetConfig() TargetConfig { return TargetConfig{Alpha: 0.65, Beta: 0.8} }

// UnitTarget applies Equation 2 (and its unpaired analogue) to one unit:
// it returns the raw target in {-1, 0, 1} given the record label.
func UnitTarget(u units.Unit, sim float64, label int, cfg TargetConfig) float64 {
	if u.Kind != units.Paired {
		// Unpaired units are non-match evidence; inside matching records
		// the evidence contradicts the label and is neutralized.
		if label == 1 {
			return 0
		}
		return -1
	}
	if label == 1 {
		if sim >= cfg.Alpha {
			return 1
		}
		return 0
	}
	if sim < cfg.Beta {
		return -1
	}
	return 0
}

// TrainingSet accumulates Equation 3: for every decision unit occurrence
// it records the features, and per unit key the running mean of targets.
type TrainingSet struct {
	cfg TargetConfig

	features [][]float64
	keys     []string
	sum      map[string]float64
	count    map[string]int
}

// NewTrainingSet returns an empty accumulator.
func NewTrainingSet(cfg TargetConfig) *TrainingSet {
	return &TrainingSet{cfg: cfg, sum: make(map[string]float64), count: make(map[string]int)}
}

// Add appends every unit of the record with the given label.
func (ts *TrainingSet) Add(rec *Record, label int) {
	for i, u := range rec.Units {
		key := units.Key(u, rec.Left, rec.Right)
		ts.features = append(ts.features, rec.Features(i))
		ts.keys = append(ts.keys, key)
		ts.sum[key] += UnitTarget(u, u.Sim, label, ts.cfg)
		ts.count[key]++
	}
}

// Len returns the number of accumulated unit occurrences.
func (ts *TrainingSet) Len() int { return len(ts.features) }

// Materialize returns the feature matrix and the per-occurrence targets
// y*, each occurrence receiving its unit key's dataset-wide mean target.
func (ts *TrainingSet) Materialize() (x [][]float64, y [][]float64) {
	y = make([][]float64, len(ts.keys))
	for i, key := range ts.keys {
		y[i] = []float64{ts.sum[key] / float64(ts.count[key])}
	}
	return ts.features, y
}

// NN is the production relevance scorer: the paper's 300/64/32 ReLU
// network with a tanh output head, regressing the Equation 3 targets.
type NN struct {
	net *nn.Net
	dim int // embedding dimension the network was trained for
}

// NNConfig configures TrainNN.
type NNConfig struct {
	Hidden []int     // hidden layer sizes; nil = the paper's {300, 64, 32}
	Train  nn.Config // optimizer settings; zero Epochs = nn.Defaults()
	Seed   int64
}

// TrainNN fits the scorer network on an accumulated training set. dim is
// the embedding dimensionality (the input size is 2*dim).
func TrainNN(ts *TrainingSet, dim int, cfg NNConfig) (*NN, error) {
	return TrainNNCtx(context.Background(), ts, dim, cfg)
}

// TrainNNCtx is TrainNN honoring a context: cancellation propagates into
// the epoch loop (nn.FitCtx), so an interrupt abandons scorer training at
// the next epoch boundary.
func TrainNNCtx(ctx context.Context, ts *TrainingSet, dim int, cfg NNConfig) (*NN, error) {
	if ts.Len() == 0 {
		return nil, fmt.Errorf("relevance: empty training set")
	}
	hidden := cfg.Hidden
	if hidden == nil {
		hidden = []int{300, 64, 32}
	}
	sizes := append([]int{2 * dim}, hidden...)
	sizes = append(sizes, 1)
	acts := make([]nn.Activation, len(sizes)-1)
	for i := range acts {
		acts[i] = nn.ReLU
	}
	acts[len(acts)-1] = nn.Tanh
	net := nn.New(sizes, acts, cfg.Seed)

	trainCfg := cfg.Train
	if trainCfg.Epochs == 0 {
		trainCfg = nn.Defaults()
		trainCfg.Seed = cfg.Seed
	}
	x, y := ts.Materialize()
	if _, err := net.FitCtx(ctx, x, y, trainCfg); err != nil {
		return nil, fmt.Errorf("relevance: %w", err)
	}
	return &NN{net: net, dim: dim}, nil
}

// Score implements Scorer. Outputs are clamped to [-1, 1] (the tanh head
// already enforces it; the clamp guards future head changes).
func (s *NN) Score(rec *Record) []float64 {
	out := make([]float64, len(rec.Units))
	for i := range rec.Units {
		v := s.net.Forward(rec.Features(i))[0]
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		out[i] = v
	}
	return out
}

// Dim returns the embedding dimension the scorer expects.
func (s *NN) Dim() int { return s.dim }

// LeftTexts returns the left tokens' texts in order.
func (r *Record) LeftTexts() []string { return tokenize.Texts(r.Left) }

// RightTexts returns the right tokens' texts in order.
func (r *Record) RightTexts() []string { return tokenize.Texts(r.Right) }
