package relevance

import (
	"math"
	"math/rand"
	"testing"

	"wym/internal/embed"
	"wym/internal/nn"
	"wym/internal/tokenize"
	"wym/internal/units"
)

// makeRecord builds a Record for two single-attribute entity descriptions.
func makeRecord(left, right string) *Record {
	src := embed.NewHash()
	lt := tokenize.Entity([]string{left}, tokenize.Default)
	rt := tokenize.Entity([]string{right}, tokenize.Default)
	in := units.Input{
		Left:      lt,
		Right:     rt,
		LeftVecs:  embed.Contextualize(src, tokenize.Texts(lt), 0),
		RightVecs: embed.Contextualize(src, tokenize.Texts(rt), 0),
		NumAttrs:  1,
	}
	return &Record{
		Units:     units.Discover(in, units.PaperThresholds),
		Left:      lt,
		Right:     rt,
		LeftVecs:  in.LeftVecs,
		RightVecs: in.RightVecs,
	}
}

func TestFeaturesSymmetry(t *testing.T) {
	rec := makeRecord("digital camera", "digital cameras")
	// Swapping the record's sides must produce identical unit features for
	// the mirrored units (challenge R3).
	mirror := &Record{
		Left: rec.Right, Right: rec.Left,
		LeftVecs: rec.RightVecs, RightVecs: rec.LeftVecs,
	}
	for i, u := range rec.Units {
		if u.Kind != units.Paired {
			continue
		}
		mirror.Units = []units.Unit{{Kind: units.Paired, Left: u.Right, Right: u.Left, Sim: u.Sim}}
		a := rec.Features(i)
		b := mirror.Features(0)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-12 {
				t.Fatalf("feature %d not symmetric: %v vs %v", j, a[j], b[j])
			}
		}
	}
}

func TestFeaturesUnpairedUsesZeroUNP(t *testing.T) {
	rec := makeRecord("espresso", "keyboard")
	if len(rec.Units) != 2 {
		t.Fatalf("expected 2 unpaired units, got %v", rec.Units)
	}
	f := rec.Features(0)
	d := rec.Dim()
	if len(f) != 2*d {
		t.Fatalf("feature dim = %d, want %d", len(f), 2*d)
	}
	// With a zero [UNP] side, mean must equal |diff|/1 scaled: mean = v/2
	// and absdiff = |v| elementwise, so 2*mean[i] == ±absdiff[i].
	for i := 0; i < d; i++ {
		if math.Abs(math.Abs(2*f[i])-f[d+i]) > 1e-9 {
			t.Fatalf("zero-UNP relationship violated at dim %d: mean=%v absdiff=%v", i, f[i], f[d+i])
		}
	}
}

func TestRecordDim(t *testing.T) {
	rec := makeRecord("a1b2", "c3d4")
	if rec.Dim() != 48 {
		t.Fatalf("dim = %d", rec.Dim())
	}
	empty := &Record{}
	if empty.Dim() != 0 {
		t.Fatal("empty record dim should be 0")
	}
	rightOnly := &Record{RightVecs: [][]float64{{1, 2}}}
	if rightOnly.Dim() != 2 {
		t.Fatal("right-only record dim wrong")
	}
}

func TestBinaryScorer(t *testing.T) {
	rec := makeRecord("camera sony", "camera nikon")
	scores := Binary{}.Score(rec)
	for i, u := range rec.Units {
		want := 0.0
		if u.Kind == units.Paired {
			want = 1
		}
		if scores[i] != want {
			t.Fatalf("unit %d (%v): score %v, want %v", i, u, scores[i], want)
		}
	}
}

func TestCosineScorer(t *testing.T) {
	rec := makeRecord("camera", "camera")
	scores := Cosine{}.Score(rec)
	if math.Abs(scores[0]-1) > 1e-9 {
		t.Fatalf("identical pair cosine = %v", scores[0])
	}
	rec = makeRecord("espresso", "keyboard")
	for i, s := range (Cosine{}).Score(rec) {
		if s != 0 {
			t.Fatalf("unpaired unit %d cosine = %v, want 0", i, s)
		}
	}
}

func TestUnitTargetEquation2(t *testing.T) {
	cfg := DefaultTargetConfig()
	paired := units.Unit{Kind: units.Paired}
	unpaired := units.Unit{Kind: units.UnpairedLeft}
	tests := []struct {
		name  string
		u     units.Unit
		sim   float64
		label int
		want  float64
	}{
		{"match + similar => 1", paired, 0.9, 1, 1},
		{"match + dissimilar => 0", paired, 0.3, 1, 0},
		{"nonmatch + dissimilar => -1", paired, 0.3, 0, -1},
		{"nonmatch + very similar => 0 (R1)", paired, 0.95, 0, 0},
		{"unpaired in match => 0 (R1)", unpaired, 0, 1, 0},
		{"unpaired in nonmatch => -1", unpaired, 0, 0, -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := UnitTarget(tc.u, tc.sim, tc.label, cfg); got != tc.want {
				t.Fatalf("target = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestTrainingSetAggregation(t *testing.T) {
	// The same token pair appearing under both labels must average its
	// targets (Equation 3).
	ts := NewTrainingSet(DefaultTargetConfig())
	match := makeRecord("sony", "sony")
	ts.Add(match, 1) // (sony, sony): sim 1 >= alpha, target 1
	ts.Add(match, 0) // same unit under non-match: sim 1 >= beta, target 0
	x, y := ts.Materialize()
	if len(x) != 2 || len(y) != 2 {
		t.Fatalf("materialized %d/%d rows", len(x), len(y))
	}
	// Mean of {1, 0} = 0.5 for every occurrence of the unit key.
	for i := range y {
		if math.Abs(y[i][0]-0.5) > 1e-12 {
			t.Fatalf("aggregated target = %v, want 0.5", y[i][0])
		}
	}
}

func TestTrainNNAndScoreSeparates(t *testing.T) {
	// Build a corpus where identical-token pairs occur in matching records
	// and unpaired tokens in non-matching ones; the trained scorer must
	// give paired-similar units higher scores than unpaired units.
	ts := NewTrainingSet(DefaultTargetConfig())
	vocabulary := []string{"camera", "lens", "sony", "zoom", "kit", "filter", "tripod", "flash"}
	rng := rand.New(rand.NewSource(3))
	var records []*Record
	for i := 0; i < 60; i++ {
		w := vocabulary[rng.Intn(len(vocabulary))]
		w2 := vocabulary[rng.Intn(len(vocabulary))]
		match := makeRecord(w+" "+w2, w+" "+w2)
		ts.Add(match, 1)
		records = append(records, match)
		nonmatch := makeRecord(w, vocabulary[(rng.Intn(len(vocabulary)))])
		ts.Add(nonmatch, 0)
	}
	scorer, err := TrainNN(ts, 48, NNConfig{Hidden: []int{32, 16}, Seed: 1,
		Train: nn.Config{Epochs: 30, BatchSize: 32, LR: 1e-3, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if scorer.Dim() != 48 {
		t.Fatalf("scorer dim = %d", scorer.Dim())
	}

	var pairedSum, pairedN, unpairedSum, unpairedN float64
	probe := makeRecord("camera lens", "camera tripod")
	for i, u := range probe.Units {
		s := scorer.Score(probe)[i]
		if s < -1 || s > 1 {
			t.Fatalf("score out of range: %v", s)
		}
		if u.Kind == units.Paired && u.Sim > 0.9 {
			pairedSum += s
			pairedN++
		}
		if u.Kind != units.Paired {
			unpairedSum += s
			unpairedN++
		}
	}
	if pairedN == 0 || unpairedN == 0 {
		t.Fatalf("probe should contain both kinds: %v", probe.Units)
	}
	if pairedSum/pairedN <= unpairedSum/unpairedN {
		t.Fatalf("scorer does not separate: paired mean %v <= unpaired mean %v",
			pairedSum/pairedN, unpairedSum/unpairedN)
	}
}

func TestTrainNNEmptySet(t *testing.T) {
	if _, err := TrainNN(NewTrainingSet(DefaultTargetConfig()), 8, NNConfig{}); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestNNScoreSymmetryProperty(t *testing.T) {
	// Score must be invariant to swapping the unit's tokens: train a tiny
	// scorer, then compare mirrored records.
	ts := NewTrainingSet(DefaultTargetConfig())
	rec := makeRecord("camera zoom", "camera lens")
	ts.Add(rec, 1)
	scorer, err := TrainNN(ts, 48, NNConfig{Hidden: []int{8}, Seed: 2,
		Train: nn.Config{Epochs: 5, BatchSize: 4, LR: 1e-3, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	mirror := &Record{
		Left: rec.Right, Right: rec.Left,
		LeftVecs: rec.RightVecs, RightVecs: rec.LeftVecs,
	}
	for i, u := range rec.Units {
		if u.Kind != units.Paired {
			continue
		}
		mirror.Units = []units.Unit{{Kind: units.Paired, Left: u.Right, Right: u.Left, Sim: u.Sim}}
		a := scorer.Score(rec)[i]
		b := scorer.Score(mirror)[0]
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("asymmetric score: %v vs %v", a, b)
		}
	}
}
