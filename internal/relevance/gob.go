package relevance

import (
	"bytes"
	"encoding/gob"

	"wym/internal/nn"
)

// Gob support for the fitted scorers (core.System.Save/Load).

func init() {
	gob.Register(&NN{})
	gob.Register(Binary{})
	gob.Register(Cosine{})
}

type nnSnapshot struct {
	Net *nn.Net
	Dim int
}

// GobEncode implements gob.GobEncoder.
func (s *NN) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(nnSnapshot{Net: s.net, Dim: s.dim}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *NN) GobDecode(data []byte) error {
	var snap nnSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	s.net, s.dim = snap.Net, snap.Dim
	return nil
}
