package eval

import (
	"math"
	"testing"
)

func TestPairQuality(t *testing.T) {
	truth := [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	predicted := [][2]int{{0, 1}, {2, 3}, {9, 9}, {2, 3}} // one dup, one false positive
	q := NewPairQuality(predicted, truth)
	if q.Predicted != 3 || q.Truth != 4 || q.Hit != 2 {
		t.Fatalf("quality = %+v", q)
	}
	if p := q.Precision(); math.Abs(p-2.0/3.0) > 1e-9 {
		t.Fatalf("precision = %v", p)
	}
	if r := q.Recall(); r != 0.5 {
		t.Fatalf("recall = %v", r)
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / (2.0/3.0 + 0.5)
	if f := q.F1(); math.Abs(f-wantF1) > 1e-9 {
		t.Fatalf("f1 = %v, want %v", f, wantF1)
	}
}

func TestPairQualityEdges(t *testing.T) {
	empty := NewPairQuality(nil, nil)
	if empty.Precision() != 0 || empty.Recall() != 1 || empty.F1() != 0 {
		t.Fatalf("empty quality: %+v p=%v r=%v", empty, empty.Precision(), empty.Recall())
	}
	perfect := NewPairQuality([][2]int{{1, 2}}, [][2]int{{1, 2}})
	if perfect.F1() != 1 {
		t.Fatalf("perfect F1 = %v", perfect.F1())
	}
}

func TestBlockingRecall(t *testing.T) {
	truth := [][2]int{{0, 0}, {1, 1}, {2, 2}, {2, 2}} // dup counted once
	cands := [][2]int{{0, 0}, {1, 1}, {5, 5}}
	if r := BlockingRecall(cands, truth); math.Abs(r-2.0/3.0) > 1e-9 {
		t.Fatalf("blocking recall = %v", r)
	}
	if r := BlockingRecall(nil, nil); r != 1 {
		t.Fatalf("empty truth recall = %v", r)
	}
	if r := BlockingRecall(nil, truth); r != 0 {
		t.Fatalf("no candidates recall = %v", r)
	}
}

// TestPairQualityDegenerateF1 pins F1 = 0 when precision and recall are
// both zero (no division-by-zero blowup).
func TestPairQualityDegenerateF1(t *testing.T) {
	q := NewPairQuality([][2]int{{0, 0}}, [][2]int{{1, 1}})
	if q.Precision() != 0 || q.Recall() != 0 || q.F1() != 0 {
		t.Fatalf("disjoint sets: P=%v R=%v F1=%v", q.Precision(), q.Recall(), q.F1())
	}
}
