// Package eval provides the evaluation machinery of §5: classification
// metrics, the post-hoc sufficiency measure (Equation 4), MoRF/LeRF/Random
// perturbation analysis (Figure 8), Pareto conciseness (Figure 6), Pearson
// correlation between explanations (Figure 9), learning curves (Figure 5),
// and the simulated user study with Fleiss' kappa (§5.4).
//
// The metrics here are model-QUALITY metrics — how well a trained matcher
// predicts — computed offline over a labeled dataset. They are unrelated
// to the RUNTIME observability metrics of internal/obs (request counts,
// latency histograms, stage spans), which describe how the system behaves
// in production; this file was once named metrics.go and was renamed to
// quality.go to keep the two families apart.
package eval

import (
	"fmt"

	"wym/internal/vec"
)

// Confusion is a binary confusion matrix with the match class as positive.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies predictions against labels.
func NewConfusion(pred, labels []int) Confusion {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("eval: %d predictions for %d labels", len(pred), len(labels)))
	}
	var c Confusion
	for i := range labels {
		switch {
		case pred[i] == 1 && labels[i] == 1:
			c.TP++
		case pred[i] == 1 && labels[i] == 0:
			c.FP++
		case pred[i] == 0 && labels[i] == 1:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP / (TP + FP), 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// F1Score is shorthand for NewConfusion(pred, labels).F1().
func F1Score(pred, labels []int) float64 { return NewConfusion(pred, labels).F1() }

// Pearson re-exports the correlation used by the Figure 9 comparison.
func Pearson(a, b []float64) float64 { return vec.Pearson(a, b) }

// FleissKappa computes Fleiss' kappa for n subjects rated by the same
// number of raters into k categories. ratings[i][j] is the number of
// raters assigning subject i to category j; every row must sum to the same
// rater count. Returns 1 for perfect agreement, 0 for chance-level.
func FleissKappa(ratings [][]int) float64 {
	n := len(ratings)
	if n == 0 {
		return 0
	}
	k := len(ratings[0])
	raters := 0
	for _, v := range ratings[0] {
		raters += v
	}
	if raters <= 1 {
		return 0
	}
	// Per-category proportions and per-subject agreement.
	pj := make([]float64, k)
	var pBar float64
	for _, row := range ratings {
		total := 0
		var agree float64
		for j, v := range row {
			total += v
			pj[j] += float64(v)
			agree += float64(v * (v - 1))
		}
		if total != raters {
			panic(fmt.Sprintf("eval: ragged rating row: %d raters, want %d", total, raters))
		}
		pBar += agree / float64(raters*(raters-1))
	}
	pBar /= float64(n)
	var pe float64
	for j := range pj {
		pj[j] /= float64(n * raters)
		pe += pj[j] * pj[j]
	}
	if pe == 1 {
		return 1
	}
	return (pBar - pe) / (1 - pe)
}
