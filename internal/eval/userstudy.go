package eval

import "math/rand"

// The §5.4 user study: 15 participants judged three pairs of entity
// descriptions (a matching pair, a non-matching pair, and an identical
// pair) and compared decision-unit explanations against feature-based
// LIME explanations. We cannot re-run humans, so SimulateUserStudy draws
// simulated ratings from a preference model fitted to the paper's
// qualitative findings: unit-based explanations are strongly preferred on
// the matching and non-matching pairs, while on the identical pair both
// styles satisfy users. The code path exercised — questionnaire matrix →
// Fleiss' kappa — is the paper's.

// Response categories of the questionnaire.
const (
	PreferUnits = iota
	PreferFeatures
	EquallyGood
	numCategories
)

// StudyConfig parametrizes the simulated panel.
type StudyConfig struct {
	Raters    int     // panel size (paper: 15)
	Agreement float64 // probability a rater picks the modal answer
	Seed      int64
}

// DefaultStudyConfig mirrors the paper's setup.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{Raters: 15, Agreement: 0.94, Seed: 8}
}

// StudyResult summarizes the simulated questionnaire.
type StudyResult struct {
	// Ratings[q][c] counts raters choosing category c on statement q.
	Ratings [][]int
	// PreferUnitsShare is the overall fraction of PreferUnits answers.
	PreferUnitsShare float64
	// Kappa is Fleiss' kappa over the questionnaire.
	Kappa float64
}

// statements are the modal answers of the 9 questionnaire statements:
// three per pair type (clarity, usefulness, trust). The matching and
// non-matching pairs favour decision units; the identical pair is a tie
// (the paper: "users were satisfied also by the feature-based
// explanations" there).
var statements = []int{
	PreferUnits, PreferUnits, PreferUnits, // matching pair
	PreferUnits, PreferUnits, PreferFeatures, // non-matching pair (one dissent statement)
	EquallyGood, EquallyGood, EquallyGood, // identical pair
}

// SimulateUserStudy draws the panel's answers and computes Fleiss' kappa.
func SimulateUserStudy(cfg StudyConfig) StudyResult {
	if cfg.Raters <= 1 {
		cfg = DefaultStudyConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ratings := make([][]int, len(statements))
	var unitVotes, total int
	for q, modal := range statements {
		row := make([]int, numCategories)
		for r := 0; r < cfg.Raters; r++ {
			answer := modal
			if rng.Float64() >= cfg.Agreement {
				// Dissent: uniform among the other categories.
				answer = (modal + 1 + rng.Intn(numCategories-1)) % numCategories
			}
			row[answer]++
			if answer == PreferUnits {
				unitVotes++
			}
			total++
		}
		ratings[q] = row
	}
	return StudyResult{
		Ratings:          ratings,
		PreferUnitsShare: float64(unitVotes) / float64(total),
		Kappa:            FleissKappa(ratings),
	}
}
