package eval

// Full-table matching quality: metrics over PAIR SETS rather than aligned
// prediction/label slices. A matching job emits (left, right) index pairs;
// datagen ground truth is another pair list. These helpers score the two
// stages of the job separately — did blocking keep the true pairs
// (recall-of-blocking), and did the matcher pick the right candidates
// (pair precision/recall/F1)?

// PairQuality compares a predicted pair set against ground truth.
type PairQuality struct {
	Predicted int // pairs the job emitted as matches
	Truth     int // true pairs in the answer key
	Hit       int // true pairs the job found
}

// NewPairQuality scores predicted (left, right) pairs against truth pairs.
// Duplicates on either side are counted once.
func NewPairQuality(predicted, truth [][2]int) PairQuality {
	truthSet := make(map[[2]int]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	predSet := make(map[[2]int]bool, len(predicted))
	var hit int
	for _, p := range predicted {
		if predSet[p] {
			continue
		}
		predSet[p] = true
		if truthSet[p] {
			hit++
		}
	}
	return PairQuality{Predicted: len(predSet), Truth: len(truthSet), Hit: hit}
}

// Precision returns Hit / Predicted, 0 when nothing was predicted.
func (q PairQuality) Precision() float64 {
	if q.Predicted == 0 {
		return 0
	}
	return float64(q.Hit) / float64(q.Predicted)
}

// Recall returns Hit / Truth, 1 when the answer key is empty (nothing to
// find means nothing was missed).
func (q PairQuality) Recall() float64 {
	if q.Truth == 0 {
		return 1
	}
	return float64(q.Hit) / float64(q.Truth)
}

// F1 returns the harmonic mean of pair precision and recall.
func (q PairQuality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BlockingRecall is the fraction of true pairs that survived blocking:
// the ceiling on any downstream matcher's recall. candidates and truth are
// (left, right) index pair lists; an empty truth scores 1.
func BlockingRecall(candidates, truth [][2]int) float64 {
	if len(truth) == 0 {
		return 1
	}
	candSet := make(map[[2]int]bool, len(candidates))
	for _, c := range candidates {
		candSet[c] = true
	}
	seen := make(map[[2]int]bool, len(truth))
	var total, found int
	for _, t := range truth {
		if seen[t] {
			continue
		}
		seen[t] = true
		total++
		if candSet[t] {
			found++
		}
	}
	return float64(found) / float64(total)
}
