package eval

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"wym/internal/data"
	"wym/internal/relevance"
)

// RankUnits returns unit indices ordered by descending |impact|: the order
// in which a user would read the explanation.
func RankUnits(impacts []float64) []int {
	order := make([]int, len(impacts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(impacts[order[a]]) > math.Abs(impacts[order[b]])
	})
	return order
}

// PairFromUnits rebuilds a record pair containing only the tokens of the
// kept decision units, preserving attribute structure and token order.
// The sufficiency (Figure 7) and removal (Figure 8) experiments use it to
// re-evaluate the matcher on reduced inputs.
func PairFromUnits(rec *relevance.Record, keep []int, schemaLen int) data.Pair {
	keepL := map[int]bool{}
	keepR := map[int]bool{}
	for _, i := range keep {
		u := rec.Units[i]
		if u.Left >= 0 {
			keepL[u.Left] = true
		}
		if u.Right >= 0 {
			keepR[u.Right] = true
		}
	}
	left := make([][]string, schemaLen)
	right := make([][]string, schemaLen)
	for ti, tok := range rec.Left {
		if keepL[ti] && tok.Attr < schemaLen {
			left[tok.Attr] = append(left[tok.Attr], tok.Text)
		}
	}
	for ti, tok := range rec.Right {
		if keepR[ti] && tok.Attr < schemaLen {
			right[tok.Attr] = append(right[tok.Attr], tok.Text)
		}
	}
	p := data.Pair{
		Left:  make(data.Entity, schemaLen),
		Right: make(data.Entity, schemaLen),
	}
	for a := 0; a < schemaLen; a++ {
		p.Left[a] = strings.Join(left[a], " ")
		p.Right[a] = strings.Join(right[a], " ")
	}
	return p
}

// Reducer rebuilds a pair keeping only its top-v explanation elements.
// Each explanation style (decision units, LIME tokens, ...) provides one.
type Reducer func(p data.Pair, v int) data.Pair

// PostHocAccuracy implements Equation 4: the fraction of records whose
// prediction on the top-v reduced input equals the prediction on the full
// input. Higher is better — the explanation's top elements suffice to
// reproduce the decision.
func PostHocAccuracy(predict func(data.Pair) int, pairs []data.Pair, reduce Reducer, v int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var agree int
	for _, p := range pairs {
		full := predict(p)
		reduced := predict(reduce(p, v))
		if full == reduced {
			agree++
		}
	}
	return float64(agree) / float64(len(pairs))
}

// RemovalStrategy selects which units the Figure 8 perturbation removes.
type RemovalStrategy int

// Strategies.
const (
	// MoRF removes the units that support the prediction most: highest
	// positive impact on records predicted as matches, lowest negative
	// impact on predicted non-matches.
	MoRF RemovalStrategy = iota
	// LeRF removes the units that support the prediction least.
	LeRF
	// Random removes uniformly random units.
	Random
)

// RemovalOrder returns unit indices in the order the strategy removes
// them, given the record's impact scores and its predicted label.
func RemovalOrder(impacts []float64, predicted int, strategy RemovalStrategy, rng *rand.Rand) []int {
	order := make([]int, len(impacts))
	for i := range order {
		order[i] = i
	}
	switch strategy {
	case Random:
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	case MoRF:
		sort.SliceStable(order, func(a, b int) bool {
			if predicted == data.Match {
				return impacts[order[a]] > impacts[order[b]]
			}
			return impacts[order[a]] < impacts[order[b]]
		})
	case LeRF:
		sort.SliceStable(order, func(a, b int) bool {
			if predicted == data.Match {
				return impacts[order[a]] < impacts[order[b]]
			}
			return impacts[order[a]] > impacts[order[b]]
		})
	}
	return order
}

// RemoveTopK returns the kept unit indices after removing the first k
// units of the removal order.
func RemoveTopK(order []int, k int) []int {
	if k > len(order) {
		k = len(order)
	}
	kept := make([]int, len(order)-k)
	copy(kept, order[k:])
	sort.Ints(kept)
	return kept
}

// ParetoPoint is one point of the Figure 6 conciseness curve.
type ParetoPoint struct {
	Fraction float64 // fraction of units inspected (x axis)
	Share    float64 // cumulative share of total |impact| (y axis)
}

// ParetoCurve averages, over records, the cumulative |impact| captured by
// the top fraction of units at each grid point. Records with no units or
// zero total impact are skipped.
func ParetoCurve(impactsPerRecord [][]float64, grid []float64) []ParetoPoint {
	out := make([]ParetoPoint, len(grid))
	for gi, frac := range grid {
		out[gi].Fraction = frac
	}
	var counted int
	for _, impacts := range impactsPerRecord {
		if len(impacts) == 0 {
			continue
		}
		abs := make([]float64, len(impacts))
		var total float64
		for i, v := range impacts {
			abs[i] = math.Abs(v)
			total += abs[i]
		}
		if total == 0 {
			continue
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(abs)))
		counted++
		cum := make([]float64, len(abs)+1)
		for i, v := range abs {
			cum[i+1] = cum[i] + v
		}
		for gi, frac := range grid {
			k := int(math.Ceil(frac * float64(len(abs))))
			if k > len(abs) {
				k = len(abs)
			}
			out[gi].Share += cum[k] / total
		}
	}
	if counted == 0 {
		return out
	}
	for gi := range out {
		out[gi].Share /= float64(counted)
	}
	return out
}

// AlignTokenWeights maps per-token weights (keyed by side and token index)
// onto the record's decision units: each unit receives the mean weight of
// its member tokens. Tokens without weights contribute nothing.
func AlignTokenWeights(rec *relevance.Record, leftW, rightW map[int]float64) []float64 {
	out := make([]float64, len(rec.Units))
	for i, u := range rec.Units {
		var sum float64
		var n int
		if u.Left >= 0 {
			if w, ok := leftW[u.Left]; ok {
				sum += w
				n++
			}
		}
		if u.Right >= 0 {
			if w, ok := rightW[u.Right]; ok {
				sum += w
				n++
			}
		}
		if n > 0 {
			out[i] = sum / float64(n)
		}
	}
	return out
}

// LearningPoint is one point of a Figure 5 learning curve.
type LearningPoint struct {
	TrainSize int
	F1        float64
}

// LearningCurve evaluates run at each training-set size (the full set is
// included automatically when larger than every listed size). run receives
// a stratified sample of the training set and returns a test F1.
func LearningCurve(train *data.Dataset, sizes []int, run func(sample *data.Dataset) float64, seed int64) []LearningPoint {
	var out []LearningPoint
	for _, n := range sizes {
		if n >= train.Size() {
			break
		}
		out = append(out, LearningPoint{TrainSize: n, F1: run(train.Sample(n, seed))})
	}
	out = append(out, LearningPoint{TrainSize: train.Size(), F1: run(train)})
	return out
}
