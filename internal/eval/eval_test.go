package eval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"wym/internal/data"
	"wym/internal/embed"
	"wym/internal/relevance"
	"wym/internal/tokenize"
	"wym/internal/units"
)

func TestConfusionMetrics(t *testing.T) {
	c := NewConfusion([]int{1, 1, 0, 0, 1}, []int{1, 0, 0, 1, 1})
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", c.F1())
	}
	if math.Abs(c.Accuracy()-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	c := NewConfusion([]int{0, 0}, []int{0, 0})
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("degenerate metrics should be 0")
	}
	empty := Confusion{}
	if empty.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestConfusionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConfusion([]int{1}, []int{1, 0})
}

func TestFleissKappaPerfectAgreement(t *testing.T) {
	// All raters agree, with subjects spread over categories: kappa = 1.
	ratings := [][]int{{10, 0}, {0, 10}, {10, 0}}
	if got := FleissKappa(ratings); math.Abs(got-1) > 1e-12 {
		t.Fatalf("kappa = %v, want 1", got)
	}
}

func TestFleissKappaKnownValue(t *testing.T) {
	// The worked example from Fleiss (1971) as popularized on the kappa
	// literature: 10 subjects, 14 raters, 5 categories; kappa ≈ 0.21.
	ratings := [][]int{
		{0, 0, 0, 0, 14},
		{0, 2, 6, 4, 2},
		{0, 0, 3, 5, 6},
		{0, 3, 9, 2, 0},
		{2, 2, 8, 1, 1},
		{7, 7, 0, 0, 0},
		{3, 2, 6, 3, 0},
		{2, 5, 3, 2, 2},
		{6, 5, 2, 1, 0},
		{0, 2, 2, 3, 7},
	}
	if got := FleissKappa(ratings); math.Abs(got-0.21) > 0.005 {
		t.Fatalf("kappa = %v, want ~0.21", got)
	}
}

func TestFleissKappaEdgeCases(t *testing.T) {
	if FleissKappa(nil) != 0 {
		t.Fatal("empty ratings should give 0")
	}
	if FleissKappa([][]int{{1, 0}}) != 0 {
		t.Fatal("single rater should give 0")
	}
}

func TestRankUnits(t *testing.T) {
	order := RankUnits([]float64{0.1, -0.9, 0.5})
	if !reflect.DeepEqual(order, []int{1, 2, 0}) {
		t.Fatalf("order = %v", order)
	}
}

func makeRecord(left, right []string) *relevance.Record {
	src := embed.NewHash()
	lt := tokenize.Entity(left, tokenize.Default)
	rt := tokenize.Entity(right, tokenize.Default)
	in := units.Input{
		Left: lt, Right: rt,
		LeftVecs:  embed.Contextualize(src, tokenize.Texts(lt), 0),
		RightVecs: embed.Contextualize(src, tokenize.Texts(rt), 0),
		NumAttrs:  len(left),
	}
	return &relevance.Record{
		Units: units.Discover(in, units.PaperThresholds),
		Left:  lt, Right: rt,
		LeftVecs: in.LeftVecs, RightVecs: in.RightVecs,
	}
}

func TestPairFromUnits(t *testing.T) {
	rec := makeRecord([]string{"digital camera", "sony"}, []string{"digital camera", "nikon"})
	all := make([]int, len(rec.Units))
	for i := range all {
		all[i] = i
	}
	full := PairFromUnits(rec, all, 2)
	if full.Left[0] != "digital camera" || full.Left[1] != "sony" {
		t.Fatalf("full reconstruction = %+v", full)
	}
	if full.Right[1] != "nikon" {
		t.Fatalf("full right = %+v", full.Right)
	}
	// Keeping nothing yields empty attributes.
	empty := PairFromUnits(rec, nil, 2)
	for a := range empty.Left {
		if empty.Left[a] != "" || empty.Right[a] != "" {
			t.Fatalf("empty reconstruction = %+v", empty)
		}
	}
}

func TestPostHocAccuracy(t *testing.T) {
	// Matcher: predicts 1 iff left attr contains "x". Reducer that keeps
	// the pair intact gives accuracy 1; one that blanks it gives whatever
	// the blank prediction matches.
	predict := func(p data.Pair) int {
		if p.Left[0] == "x" {
			return 1
		}
		return 0
	}
	pairs := []data.Pair{
		{Left: data.Entity{"x"}, Right: data.Entity{"x"}},
		{Left: data.Entity{"y"}, Right: data.Entity{"y"}},
	}
	identity := func(p data.Pair, v int) data.Pair { return p }
	if got := PostHocAccuracy(predict, pairs, identity, 1); got != 1 {
		t.Fatalf("identity post-hoc = %v", got)
	}
	blank := func(p data.Pair, v int) data.Pair {
		return data.Pair{Left: data.Entity{""}, Right: data.Entity{""}}
	}
	if got := PostHocAccuracy(predict, pairs, blank, 1); got != 0.5 {
		t.Fatalf("blank post-hoc = %v", got)
	}
	if got := PostHocAccuracy(predict, nil, identity, 1); got != 0 {
		t.Fatal("empty pairs should give 0")
	}
}

func TestRemovalOrderMoRF(t *testing.T) {
	impacts := []float64{0.2, -0.5, 0.9, -0.1}
	// Predicted match: MoRF removes the highest-impact first.
	order := RemovalOrder(impacts, data.Match, MoRF, nil)
	if order[0] != 2 || order[1] != 0 {
		t.Fatalf("MoRF match order = %v", order)
	}
	// Predicted non-match: most negative first.
	order = RemovalOrder(impacts, data.NonMatch, MoRF, nil)
	if order[0] != 1 {
		t.Fatalf("MoRF nonmatch order = %v", order)
	}
}

func TestRemovalOrderLeRF(t *testing.T) {
	impacts := []float64{0.2, -0.5, 0.9, -0.1}
	order := RemovalOrder(impacts, data.Match, LeRF, nil)
	if order[0] != 1 {
		t.Fatalf("LeRF match order = %v (most negative removed first)", order)
	}
	order = RemovalOrder(impacts, data.NonMatch, LeRF, nil)
	if order[0] != 2 {
		t.Fatalf("LeRF nonmatch order = %v", order)
	}
}

func TestRemovalOrderRandomIsPermutation(t *testing.T) {
	impacts := []float64{1, 2, 3, 4, 5}
	order := RemovalOrder(impacts, data.Match, Random, rand.New(rand.NewSource(1)))
	seen := map[int]bool{}
	for _, i := range order {
		seen[i] = true
	}
	if len(seen) != 5 {
		t.Fatalf("random order not a permutation: %v", order)
	}
}

func TestRemoveTopK(t *testing.T) {
	order := []int{2, 0, 1}
	kept := RemoveTopK(order, 1)
	if !reflect.DeepEqual(kept, []int{0, 1}) {
		t.Fatalf("kept = %v", kept)
	}
	if got := RemoveTopK(order, 10); len(got) != 0 {
		t.Fatalf("over-removal should keep nothing: %v", got)
	}
}

func TestParetoCurveConcentration(t *testing.T) {
	// One dominant unit: the top 20% must capture most of the impact.
	impacts := [][]float64{{10, 0.1, 0.1, 0.1, 0.1}}
	curve := ParetoCurve(impacts, []float64{0.2, 1.0})
	if curve[0].Share < 0.9 {
		t.Fatalf("top-20%% share = %v, want >= 0.9", curve[0].Share)
	}
	if math.Abs(curve[1].Share-1) > 1e-12 {
		t.Fatalf("full share = %v, want 1", curve[1].Share)
	}
}

func TestParetoCurveUniform(t *testing.T) {
	impacts := [][]float64{{1, 1, 1, 1, 1}}
	curve := ParetoCurve(impacts, []float64{0.4})
	if math.Abs(curve[0].Share-0.4) > 1e-12 {
		t.Fatalf("uniform top-40%% share = %v, want 0.4", curve[0].Share)
	}
}

func TestParetoCurveSkipsDegenerate(t *testing.T) {
	impacts := [][]float64{nil, {0, 0}, {1, 0}}
	curve := ParetoCurve(impacts, []float64{0.5})
	// Only the third record counts; its top-50% (1 unit) share is 1.
	if math.Abs(curve[0].Share-1) > 1e-12 {
		t.Fatalf("share = %v", curve[0].Share)
	}
}

func TestAlignTokenWeights(t *testing.T) {
	rec := makeRecord([]string{"camera"}, []string{"camera"})
	if len(rec.Units) != 1 || rec.Units[0].Kind != units.Paired {
		t.Fatalf("unexpected units: %v", rec.Units)
	}
	w := AlignTokenWeights(rec, map[int]float64{0: 0.6}, map[int]float64{0: 0.2})
	if math.Abs(w[0]-0.4) > 1e-12 {
		t.Fatalf("aligned weight = %v, want mean 0.4", w[0])
	}
	// Missing weights: nothing contributed.
	w = AlignTokenWeights(rec, nil, nil)
	if w[0] != 0 {
		t.Fatalf("weight without tokens = %v", w[0])
	}
}

func TestLearningCurve(t *testing.T) {
	d := &data.Dataset{Name: "lc", Schema: data.Schema{"a"}}
	for i := 0; i < 100; i++ {
		label := data.NonMatch
		if i%5 == 0 {
			label = data.Match
		}
		d.Pairs = append(d.Pairs, data.Pair{ID: i, Label: label,
			Left: data.Entity{"x"}, Right: data.Entity{"x"}})
	}
	var sizes []int
	curve := LearningCurve(d, []int{10, 50, 1000}, func(s *data.Dataset) float64 {
		sizes = append(sizes, s.Size())
		return float64(s.Size())
	}, 1)
	// 1000 > dataset size: curve is 10, 50, full.
	if len(curve) != 3 || curve[2].TrainSize != 100 {
		t.Fatalf("curve = %+v", curve)
	}
	if sizes[0] != 10 || sizes[1] != 50 || sizes[2] != 100 {
		t.Fatalf("sample sizes = %v", sizes)
	}
}

func TestSimulateUserStudy(t *testing.T) {
	res := SimulateUserStudy(DefaultStudyConfig())
	if len(res.Ratings) != 9 {
		t.Fatalf("statements = %d", len(res.Ratings))
	}
	for q, row := range res.Ratings {
		total := 0
		for _, v := range row {
			total += v
		}
		if total != 15 {
			t.Fatalf("statement %d has %d raters", q, total)
		}
	}
	// The paper's findings: units preferred overall, substantial agreement.
	if res.PreferUnitsShare < 0.4 {
		t.Fatalf("prefer-units share = %v", res.PreferUnitsShare)
	}
	if res.Kappa < 0.6 || res.Kappa > 1 {
		t.Fatalf("kappa = %v, want substantial agreement (~0.787 in the paper)", res.Kappa)
	}
	// Deterministic for a fixed seed.
	res2 := SimulateUserStudy(DefaultStudyConfig())
	if res.Kappa != res2.Kappa {
		t.Fatal("study simulation not deterministic")
	}
}
