// Package assignment implements the relaxed Stable Marriage matching used
// by the decision-unit generator (GetSMPairs in Algorithm 1 of the paper).
//
// The classic Gale–Shapley problem matches two equally sized sets using
// total preference orders. The EM variant relaxes this: the two sides may
// have different sizes, preferences are continuous similarity values, and a
// preference list only contains candidates whose similarity clears a
// threshold — so elements can stay unmatched. The proposer side runs the
// classic deferred-acceptance loop; the result is stable with respect to
// the thresholded preference lists.
package assignment

import "sync"

// Pair is one match in the output: X indexes the proposer side, Y the
// reviewer side, and Sim is their similarity.
type Pair struct {
	X, Y int
	Sim  float64
}

// MatrixSim adapts a flat row-major nx×ny similarity matrix (mat[x*ny+y]
// is sim(x, y)) to Match's sim signature. Precomputing the matrix once and
// serving every Match call from it is the hot-path pattern of the
// decision-unit generator.
func MatrixSim(mat []float64, ny int) func(x, y int) float64 {
	return func(x, y int) float64 { return mat[x*ny+y] }
}

// SubMatrixSim is MatrixSim restricted to a subset of each side: xs and ys
// map the proposer/reviewer indices of one Match call onto the rows and
// columns of the full matrix. Algorithm 1's staged search spaces are such
// subsets of one record-wide matrix.
func SubMatrixSim(mat []float64, ny int, xs, ys []int) func(x, y int) float64 {
	return func(x, y int) float64 { return mat[xs[x]*ny+ys[y]] }
}

// cand is one entry of a proposer's preference list.
type cand struct {
	y int
	s float64
}

// matchScratch holds the per-call working memory of Match. The matcher
// runs four-plus times per record on the hot path, so the slices are
// pooled; everything here is dead once Match returns.
type matchScratch struct {
	cands     []cand // one arena, sub-sliced per proposer
	prefStart []int  // nx+1 offsets into cands
	next      []int
	engagedTo []int
	free      []int
}

var scratchPool = sync.Pool{New: func() any { return new(matchScratch) }}

// grow returns s[:n], reallocating only when the capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Match finds a stable one-to-one matching between a proposer side of size
// nx and a reviewer side of size ny. sim(x, y) must be a deterministic
// similarity — it may be called more than once per pair, so expensive
// similarities should be precomputed (see MatrixSim); only pairs with
// sim >= threshold are eligible. Ties are broken by the lower index on
// both sides, which makes the result deterministic. The returned pairs are
// sorted by (X, Y).
//
// Complexity is O(nx*ny*log(ny)) for preference-list construction plus the
// classic O(nx*ny) proposal loop — the footnote-3 quadratic bound.
func Match(nx, ny int, sim func(x, y int) float64, threshold float64) []Pair {
	if nx == 0 || ny == 0 {
		return nil
	}
	sc := scratchPool.Get().(*matchScratch)
	defer scratchPool.Put(sc)

	// Build each proposer's preference list: eligible reviewers in
	// descending similarity, index-ascending on ties. The lists live in
	// one shared arena; prefStart[x] .. prefStart[x+1] delimits x's list.
	// Lists are short (thresholding prunes most candidates), so an
	// insertion sort beats the generic sorts and allocates nothing.
	sc.cands = sc.cands[:0]
	sc.prefStart = grow(sc.prefStart, nx+1)
	for x := 0; x < nx; x++ {
		sc.prefStart[x] = len(sc.cands)
		start := len(sc.cands)
		for y := 0; y < ny; y++ {
			s := sim(x, y)
			if s < threshold {
				continue
			}
			// Insert into the sorted tail: descending s, ascending y.
			sc.cands = append(sc.cands, cand{y, s})
			for i := len(sc.cands) - 1; i > start; i-- {
				p := &sc.cands[i-1]
				if p.s > s || (p.s == s && p.y < y) {
					break
				}
				sc.cands[i], sc.cands[i-1] = *p, cand{y, s}
			}
		}
	}
	sc.prefStart[nx] = len(sc.cands)

	// Deferred acceptance. next[x] is the position in x's preference list
	// of the next reviewer to propose to; engagedTo[y] is the proposer
	// currently holding y (-1 if free).
	next := grow(sc.next, nx)
	for x := range next {
		next[x] = sc.prefStart[x]
	}
	engagedTo := grow(sc.engagedTo, ny)
	for y := range engagedTo {
		engagedTo[y] = -1
	}
	free := grow(sc.free, nx)
	for x := 0; x < nx; x++ {
		free[nx-1-x] = x // stack: lowest index proposes first
	}
	sc.next, sc.engagedTo, sc.free = next, engagedTo, free
	for len(free) > 0 {
		x := free[len(free)-1]
		free = free[:len(free)-1]
		for next[x] < sc.prefStart[x+1] {
			c := sc.cands[next[x]]
			next[x]++
			cur := engagedTo[c.y]
			if cur == -1 {
				engagedTo[c.y] = x
				x = -1
				break
			}
			// The reviewer keeps the more similar proposer; on a tie the
			// lower index wins, matching the preference-list tiebreak.
			curSim := sim(cur, c.y)
			if c.s > curSim || (c.s == curSim && x < cur) {
				engagedTo[c.y] = x
				free = append(free, cur)
				x = -1
				break
			}
		}
		_ = x // x exhausted its list: it stays unmatched
	}

	// Emit sorted by (X, Y) without a post-sort: engagedTo maps each
	// reviewer to at most one proposer, so collecting per proposer in
	// index order — reviewers ascending within — is already the order.
	n := 0
	for _, x := range engagedTo {
		if x >= 0 {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Pair, 0, n)
	for x := 0; x < nx && len(out) < n; x++ {
		for _, c := range sc.cands[sc.prefStart[x]:sc.prefStart[x+1]] {
			if engagedTo[c.y] == x {
				out = append(out, Pair{X: x, Y: c.y, Sim: c.s})
			}
		}
	}
	return out
}

// IsStable reports whether the matching is stable under the thresholded
// preferences: there is no pair (x, y) with sim(x, y) >= threshold where
// both x and y would strictly prefer each other over their current
// situation (being unmatched counts as the worst outcome). Property tests
// use it to validate Match.
func IsStable(pairs []Pair, nx, ny int, sim func(x, y int) float64, threshold float64) bool {
	matchX := make([]int, nx)
	matchY := make([]int, ny)
	for i := range matchX {
		matchX[i] = -1
	}
	for i := range matchY {
		matchY[i] = -1
	}
	for _, p := range pairs {
		matchX[p.X] = p.Y
		matchY[p.Y] = p.X
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			s := sim(x, y)
			if s < threshold {
				continue
			}
			xPrefers := matchX[x] == -1 || s > sim(x, matchX[x])
			yPrefers := matchY[y] == -1 || s > sim(matchY[y], y)
			if xPrefers && yPrefers {
				return false
			}
		}
	}
	return true
}
