// Package assignment implements the relaxed Stable Marriage matching used
// by the decision-unit generator (GetSMPairs in Algorithm 1 of the paper).
//
// The classic Gale–Shapley problem matches two equally sized sets using
// total preference orders. The EM variant relaxes this: the two sides may
// have different sizes, preferences are continuous similarity values, and a
// preference list only contains candidates whose similarity clears a
// threshold — so elements can stay unmatched. The proposer side runs the
// classic deferred-acceptance loop; the result is stable with respect to
// the thresholded preference lists.
package assignment

import "sort"

// Pair is one match in the output: X indexes the proposer side, Y the
// reviewer side, and Sim is their similarity.
type Pair struct {
	X, Y int
	Sim  float64
}

// Match finds a stable one-to-one matching between a proposer side of size
// nx and a reviewer side of size ny. sim(x, y) must be a deterministic
// similarity; only pairs with sim >= threshold are eligible. Ties are
// broken by the lower index on both sides, which makes the result
// deterministic. The returned pairs are sorted by (X, Y).
//
// Complexity is O(nx*ny*log(ny)) for preference-list construction plus the
// classic O(nx*ny) proposal loop — the footnote-3 quadratic bound.
func Match(nx, ny int, sim func(x, y int) float64, threshold float64) []Pair {
	if nx == 0 || ny == 0 {
		return nil
	}
	// Build each proposer's preference list: eligible reviewers in
	// descending similarity, index-ascending on ties.
	type cand struct {
		y int
		s float64
	}
	prefs := make([][]cand, nx)
	simTo := make([][]float64, nx) // cache sim values for the accept step
	for x := 0; x < nx; x++ {
		row := make([]float64, ny)
		var list []cand
		for y := 0; y < ny; y++ {
			s := sim(x, y)
			row[y] = s
			if s >= threshold {
				list = append(list, cand{y, s})
			}
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].s != list[j].s {
				return list[i].s > list[j].s
			}
			return list[i].y < list[j].y
		})
		prefs[x] = list
		simTo[x] = row
	}

	// Deferred acceptance. next[x] is the position in x's preference list
	// of the next reviewer to propose to; engagedTo[y] is the proposer
	// currently holding y (-1 if free).
	next := make([]int, nx)
	engagedTo := make([]int, ny)
	for y := range engagedTo {
		engagedTo[y] = -1
	}
	free := make([]int, 0, nx)
	for x := nx - 1; x >= 0; x-- {
		free = append(free, x) // stack: lowest index proposes first
	}
	for len(free) > 0 {
		x := free[len(free)-1]
		free = free[:len(free)-1]
		for next[x] < len(prefs[x]) {
			c := prefs[x][next[x]]
			next[x]++
			cur := engagedTo[c.y]
			if cur == -1 {
				engagedTo[c.y] = x
				x = -1
				break
			}
			// The reviewer keeps the more similar proposer; on a tie the
			// lower index wins, matching the preference-list tiebreak.
			curSim := simTo[cur][c.y]
			if c.s > curSim || (c.s == curSim && x < cur) {
				engagedTo[c.y] = x
				free = append(free, cur)
				x = -1
				break
			}
		}
		_ = x // x exhausted its list: it stays unmatched
	}

	var out []Pair
	for y, x := range engagedTo {
		if x >= 0 {
			out = append(out, Pair{X: x, Y: y, Sim: simTo[x][y]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// IsStable reports whether the matching is stable under the thresholded
// preferences: there is no pair (x, y) with sim(x, y) >= threshold where
// both x and y would strictly prefer each other over their current
// situation (being unmatched counts as the worst outcome). Property tests
// use it to validate Match.
func IsStable(pairs []Pair, nx, ny int, sim func(x, y int) float64, threshold float64) bool {
	matchX := make([]int, nx)
	matchY := make([]int, ny)
	for i := range matchX {
		matchX[i] = -1
	}
	for i := range matchY {
		matchY[i] = -1
	}
	for _, p := range pairs {
		matchX[p.X] = p.Y
		matchY[p.Y] = p.X
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			s := sim(x, y)
			if s < threshold {
				continue
			}
			xPrefers := matchX[x] == -1 || s > sim(x, matchX[x])
			yPrefers := matchY[y] == -1 || s > sim(matchY[y], y)
			if xPrefers && yPrefers {
				return false
			}
		}
	}
	return true
}
