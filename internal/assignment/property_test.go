package assignment

import (
	"math/rand"
	"reflect"
	"testing"
)

// The property tests drive Match with hundreds of random thresholded
// similarity instances and verify the invariants that every caller
// (Algorithm 1's three staged searches) relies on: the result is a valid
// partial matching, respects the threshold, reports true similarities,
// is stable, deterministically ordered, and reproducible.

func randomInstance(rng *rand.Rand) (nx, ny int, mat []float64, threshold float64) {
	nx, ny = rng.Intn(13), rng.Intn(13)
	mat = make([]float64, nx*ny)
	for i := range mat {
		mat[i] = rng.Float64()
	}
	// Bias thresholds into the interesting band: low enough that pairs
	// form, high enough that preference lists get pruned.
	threshold = 0.2 + 0.7*rng.Float64()
	return nx, ny, mat, threshold
}

func TestMatchRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		nx, ny, mat, threshold := randomInstance(rng)
		sim := MatrixSim(mat, ny)
		pairs := Match(nx, ny, sim, threshold)

		// Valid partial matching: each proposer and each reviewer appears
		// at most once, with in-range indices.
		seenX := make(map[int]bool, len(pairs))
		seenY := make(map[int]bool, len(pairs))
		for _, p := range pairs {
			if p.X < 0 || p.X >= nx || p.Y < 0 || p.Y >= ny {
				t.Fatalf("trial %d: pair out of range: %+v (nx=%d ny=%d)", trial, p, nx, ny)
			}
			if seenX[p.X] {
				t.Fatalf("trial %d: proposer %d matched twice", trial, p.X)
			}
			if seenY[p.Y] {
				t.Fatalf("trial %d: reviewer %d matched twice", trial, p.Y)
			}
			seenX[p.X], seenY[p.Y] = true, true

			// The reported similarity is the true one and clears the bar.
			if got := sim(p.X, p.Y); p.Sim != got {
				t.Fatalf("trial %d: pair %+v reports sim %v, matrix says %v", trial, p, p.Sim, got)
			}
			if p.Sim < threshold {
				t.Fatalf("trial %d: pair %+v below threshold %v", trial, p, threshold)
			}
		}

		// Deterministic output order: sorted by (X, Y).
		for i := 1; i < len(pairs); i++ {
			a, b := pairs[i-1], pairs[i]
			if a.X > b.X || (a.X == b.X && a.Y >= b.Y) {
				t.Fatalf("trial %d: pairs not sorted by (X, Y): %+v before %+v", trial, a, b)
			}
		}

		// Stability under the thresholded preferences.
		if !IsStable(pairs, nx, ny, sim, threshold) {
			t.Fatalf("trial %d: matching not stable (nx=%d ny=%d th=%v): %+v",
				trial, nx, ny, threshold, pairs)
		}

		// Reproducibility: the same instance yields the same matching.
		again := Match(nx, ny, sim, threshold)
		if !reflect.DeepEqual(pairs, again) {
			t.Fatalf("trial %d: Match is not deterministic:\n%+v\n%+v", trial, pairs, again)
		}
	}
}

func TestMatchThresholdExcludesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nx, ny := 6, 6
	mat := make([]float64, nx*ny)
	for i := range mat {
		mat[i] = rng.Float64() * 0.5
	}
	if pairs := Match(nx, ny, MatrixSim(mat, ny), 0.9); pairs != nil {
		t.Fatalf("threshold above every similarity still matched: %+v", pairs)
	}
}

func TestMatchPerfectDiagonal(t *testing.T) {
	// With a dominant diagonal every element should pair with its twin.
	const n = 8
	mat := make([]float64, n*n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x == y {
				mat[x*n+y] = 1
			} else {
				mat[x*n+y] = 0.1
			}
		}
	}
	pairs := Match(n, n, MatrixSim(mat, n), 0.5)
	if len(pairs) != n {
		t.Fatalf("got %d pairs, want %d", len(pairs), n)
	}
	for _, p := range pairs {
		if p.X != p.Y || p.Sim != 1 {
			t.Fatalf("off-diagonal pair: %+v", p)
		}
	}
}
