package assignment

import (
	"math/rand"
	"reflect"
	"testing"
)

func simFromMatrix(m [][]float64) func(x, y int) float64 {
	return func(x, y int) float64 { return m[x][y] }
}

func TestMatchEmptySides(t *testing.T) {
	if got := Match(0, 3, nil, 0.5); got != nil {
		t.Fatalf("empty proposer side = %v", got)
	}
	if got := Match(3, 0, nil, 0.5); got != nil {
		t.Fatalf("empty reviewer side = %v", got)
	}
}

func TestMatchSimple(t *testing.T) {
	// Clear mutual best pairs on the diagonal.
	m := [][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	}
	got := Match(2, 2, simFromMatrix(m), 0.5)
	want := []Pair{{0, 0, 0.9}, {1, 1, 0.8}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
}

func TestMatchThresholdExcludes(t *testing.T) {
	m := [][]float64{
		{0.9, 0.4},
		{0.4, 0.45},
	}
	got := Match(2, 2, simFromMatrix(m), 0.5)
	want := []Pair{{0, 0, 0.9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
}

func TestMatchContention(t *testing.T) {
	// Both proposers prefer reviewer 0; the more similar one must win and
	// the loser must fall back to its second choice.
	m := [][]float64{
		{0.9, 0.6},
		{0.8, 0.7},
	}
	got := Match(2, 2, simFromMatrix(m), 0.5)
	want := []Pair{{0, 0, 0.9}, {1, 1, 0.7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
}

func TestMatchDisplacement(t *testing.T) {
	// Proposer 1 arrives later but displaces proposer 0 from reviewer 0;
	// proposer 0 has no other eligible option and ends unmatched.
	m := [][]float64{
		{0.7, 0.1},
		{0.9, 0.1},
	}
	got := Match(2, 2, simFromMatrix(m), 0.5)
	want := []Pair{{1, 0, 0.9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
}

func TestMatchUnequalSides(t *testing.T) {
	m := [][]float64{
		{0.9},
		{0.8},
		{0.7},
	}
	got := Match(3, 1, simFromMatrix(m), 0.5)
	want := []Pair{{0, 0, 0.9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
}

func TestMatchTieBreaksDeterministically(t *testing.T) {
	m := [][]float64{
		{0.8, 0.8},
		{0.8, 0.8},
	}
	got := Match(2, 2, simFromMatrix(m), 0.5)
	// Lower indices pair first on ties.
	want := []Pair{{0, 0, 0.8}, {1, 1, 0.8}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
}

func TestMatchOneToOneInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nx, ny := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randomSim(rng, nx, ny)
		pairs := Match(nx, ny, simFromMatrix(m), 0.5)
		seenX := map[int]bool{}
		seenY := map[int]bool{}
		for _, p := range pairs {
			if seenX[p.X] || seenY[p.Y] {
				t.Fatalf("trial %d: duplicate side index in %v", trial, pairs)
			}
			seenX[p.X], seenY[p.Y] = true, true
			if p.Sim < 0.5 {
				t.Fatalf("trial %d: pair below threshold: %v", trial, p)
			}
			if m[p.X][p.Y] != p.Sim {
				t.Fatalf("trial %d: Sim not copied from sim function", trial)
			}
		}
	}
}

func TestMatchStabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nx, ny := 1+rng.Intn(10), 1+rng.Intn(10)
		m := randomSim(rng, nx, ny)
		sim := simFromMatrix(m)
		pairs := Match(nx, ny, sim, 0.4)
		if !IsStable(pairs, nx, ny, sim, 0.4) {
			t.Fatalf("trial %d: unstable matching %v for sim %v", trial, pairs, m)
		}
	}
}

func TestMatchMaximalityProperty(t *testing.T) {
	// Stability implies maximality here: if x and y are both unmatched and
	// sim(x, y) >= threshold, (x, y) would be a blocking pair. Check it
	// directly as a separate guard.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nx, ny := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randomSim(rng, nx, ny)
		pairs := Match(nx, ny, simFromMatrix(m), 0.6)
		mx := map[int]bool{}
		my := map[int]bool{}
		for _, p := range pairs {
			mx[p.X], my[p.Y] = true, true
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if !mx[x] && !my[y] && m[x][y] >= 0.6 {
					t.Fatalf("trial %d: eligible pair (%d,%d) left unmatched", trial, x, y)
				}
			}
		}
	}
}

func TestIsStableDetectsBlockingPair(t *testing.T) {
	m := [][]float64{
		{0.9, 0.6},
		{0.8, 0.7},
	}
	// Deliberately bad matching: swap the optimal assignment.
	bad := []Pair{{0, 1, 0.6}, {1, 0, 0.8}}
	if IsStable(bad, 2, 2, simFromMatrix(m), 0.5) {
		t.Fatal("IsStable accepted a matching with a blocking pair")
	}
}

func randomSim(rng *rand.Rand, nx, ny int) [][]float64 {
	m := make([][]float64, nx)
	for x := range m {
		m[x] = make([]float64, ny)
		for y := range m[x] {
			m[x][y] = rng.Float64()
		}
	}
	return m
}

// flatten converts a [][]float64 similarity table to the row-major layout
// MatrixSim expects.
func flatten(m [][]float64) ([]float64, int) {
	if len(m) == 0 {
		return nil, 0
	}
	ny := len(m[0])
	flat := make([]float64, 0, len(m)*ny)
	for _, row := range m {
		flat = append(flat, row...)
	}
	return flat, ny
}

func TestMatrixSimReadsRowMajor(t *testing.T) {
	m := [][]float64{
		{0.1, 0.2, 0.3},
		{0.4, 0.5, 0.6},
	}
	flat, ny := flatten(m)
	sim := MatrixSim(flat, ny)
	for x := range m {
		for y := range m[x] {
			if sim(x, y) != m[x][y] {
				t.Fatalf("sim(%d,%d) = %v, want %v", x, y, sim(x, y), m[x][y])
			}
		}
	}
}

func TestSubMatrixSimRestrictsIndices(t *testing.T) {
	m := [][]float64{
		{0.1, 0.2, 0.3},
		{0.4, 0.5, 0.6},
		{0.7, 0.8, 0.9},
	}
	flat, ny := flatten(m)
	xs, ys := []int{2, 0}, []int{1}
	sim := SubMatrixSim(flat, ny, xs, ys)
	if got := sim(0, 0); got != 0.8 {
		t.Fatalf("sim(0,0) = %v, want 0.8 (row 2, col 1)", got)
	}
	if got := sim(1, 0); got != 0.2 {
		t.Fatalf("sim(1,0) = %v, want 0.2 (row 0, col 1)", got)
	}
}

// TestMatchMatrixEqualsClosure is the adapter equivalence property: a
// matrix-backed Match run must produce exactly the pairs of a
// closure-backed run over the same similarities, including on arbitrary
// index subsets — the way units.Discover serves all Algorithm-1 stages
// from one record-wide matrix.
func TestMatchMatrixEqualsClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nx, ny := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomSim(rng, nx, ny)
		threshold := rng.Float64()
		flat, stride := flatten(m)

		closurePairs := Match(nx, ny, simFromMatrix(m), threshold)
		matrixPairs := Match(nx, ny, MatrixSim(flat, stride), threshold)
		if !reflect.DeepEqual(closurePairs, matrixPairs) {
			t.Fatalf("trial %d: matrix-backed pairs diverged:\n%v\n%v",
				trial, closurePairs, matrixPairs)
		}

		// Random subsets of each side through SubMatrixSim.
		xs := randomSubset(rng, nx)
		ys := randomSubset(rng, ny)
		subClosure := Match(len(xs), len(ys), func(x, y int) float64 {
			return m[xs[x]][ys[y]]
		}, threshold)
		subMatrix := Match(len(xs), len(ys), SubMatrixSim(flat, stride, xs, ys), threshold)
		if !reflect.DeepEqual(subClosure, subMatrix) {
			t.Fatalf("trial %d: sub-matrix pairs diverged:\n%v\n%v",
				trial, subClosure, subMatrix)
		}
	}
}

// randomSubset returns a sorted random subset of 0..n-1 (possibly empty).
func randomSubset(rng *rand.Rand, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			out = append(out, i)
		}
	}
	return out
}

func BenchmarkMatch20x20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomSim(rng, 20, 20)
	sim := simFromMatrix(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Match(20, 20, sim, 0.3)
	}
}
