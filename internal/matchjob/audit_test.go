package matchjob

import (
	"context"
	"path/filepath"
	"testing"

	"wym/internal/audit"
	"wym/internal/data"
	"wym/internal/pipeline"
)

// explainFakeEngine adds the Explainer capability to fakeEngine so the
// in-process audit path can run without a trained model.
type explainFakeEngine struct{ fakeEngine }

func (e *explainFakeEngine) Explain(p data.Pair) pipeline.Explanation {
	pred := scorePair(p)
	return pipeline.Explanation{
		Prediction: pred.Label,
		Proba:      pred.Proba,
		Units: []pipeline.UnitExplanation{{
			Left: p.Left[0], Right: p.Right[0],
			Attr: 0, Relevance: 1, Impact: pred.Proba - 0.5,
		}},
	}
}

func auditedConfig(t *testing.T, cfg Config) (Config, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "audit")
	alog, err := audit.Open(dir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { alog.Close() })
	cfg.Audit = alog
	cfg.AuditMeta = AuditMeta{
		Model: "fake.gob", ArtifactFP: "fnv64:cafe",
		Threshold: 0.5, Route: "match",
	}
	return cfg, dir
}

func TestAuditJobRecordsEmittedDecisions(t *testing.T) {
	tp := jobTables(t, 120)
	cfg, adir := auditedConfig(t, jobConfig(t))
	sum := runJob(t, &explainFakeEngine{}, tp.Left, tp.Right, cfg)

	if sum.Matches == 0 {
		t.Fatalf("no matches emitted: %+v", sum)
	}
	if sum.AuditRecords != sum.Matches {
		t.Fatalf("AuditRecords = %d, want one per emitted match (%d)",
			sum.AuditRecords, sum.Matches)
	}
	if cfg.Audit.Dir() != adir {
		t.Fatalf("Dir() = %q, want %q", cfg.Audit.Dir(), adir)
	}
	if err := cfg.Audit.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := audit.ReadAll(adir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated != 0 {
		t.Fatal("clean log read back as truncated")
	}
	if int64(len(recs)) != sum.AuditRecords {
		t.Fatalf("read %d records, job reported %d", len(recs), sum.AuditRecords)
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		if seen[rec.RequestID] {
			t.Fatalf("duplicate request ID %q", rec.RequestID)
		}
		seen[rec.RequestID] = true
		if rec.Route != "match" || rec.Model != "fake.gob" || rec.ArtifactFP != "fnv64:cafe" {
			t.Fatalf("provenance not stamped: %+v", rec)
		}
		if rec.Prediction != data.Match {
			t.Fatalf("non-match audited in a match-only job: %+v", rec)
		}
		ex := rec.Explanation()
		if ex.Proba != rec.Proba || len(ex.Units) != 1 {
			t.Fatalf("stored explanation does not round-trip: %+v", ex)
		}
	}
}

// A completed job resumed over the same manifest must not re-audit:
// recording is at-most-once per committed chunk.
func TestAuditResumeDoesNotReRecord(t *testing.T) {
	tp := jobTables(t, 120)
	cfg, adir := auditedConfig(t, jobConfig(t))
	first := runJob(t, &explainFakeEngine{}, tp.Left, tp.Right, cfg)
	if err := cfg.Audit.Close(); err != nil {
		t.Fatal(err)
	}

	alog, err := audit.Open(adir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer alog.Close()
	cfg.Audit = alog
	cfg.Resume = true
	r, err := New(&explainFakeEngine{}, tp.Left, tp.Right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.ChunksResumed != first.TotalChunks {
		t.Fatalf("resume did not skip completed chunks: %+v", second)
	}
	if second.AuditRecords != 0 {
		t.Fatalf("resumed job re-audited %d records", second.AuditRecords)
	}
	alog.Close()
	recs, _, err := audit.ReadAll(adir)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != first.AuditRecords {
		t.Fatalf("log grew across a no-op resume: %d -> %d",
			first.AuditRecords, len(recs))
	}
}

func TestNewRejectsAuditWithoutExplainer(t *testing.T) {
	table := []data.Entity{{"a"}}
	cfg, _ := auditedConfig(t, jobConfig(t))
	if _, err := New(&fakeEngine{}, table, table, cfg); err == nil {
		t.Fatal("Audit accepted an engine that cannot Explain")
	}
}
