package matchjob

import "wym/internal/obs"

// Metrics is the job runner's observability bundle. Every field is
// optional (obs metrics are nil-safe); NewMetrics registers the full
// standard set.
type Metrics struct {
	// ChunksDone counts chunks processed to completion in this process.
	ChunksDone *obs.Counter
	// ChunksResumed counts chunks skipped because a valid manifest entry
	// already covered them.
	ChunksResumed *obs.Counter
	// ChunksRetried counts chunks re-run once after quarantined panics.
	ChunksRetried *obs.Counter
	// CandidatesEmitted / CandidatesPruned mirror the blocking stream's
	// totals: pairs handed to the matcher vs. pairs dropped by the
	// top-k-per-record cap.
	CandidatesEmitted *obs.Counter
	CandidatesPruned  *obs.Counter
	// Matches counts emitted match decisions.
	Matches *obs.Counter
	// RowErrors counts candidate pairs that stayed quarantined after the
	// chunk retry.
	RowErrors *obs.Counter
	// IndexBytes gauges the blocking index's peak resident size.
	IndexBytes *obs.Gauge
	// ChunkSeconds is the per-chunk wall-time histogram (blocking +
	// prediction + segment write).
	ChunkSeconds *obs.Histogram
}

// NewMetrics registers the runner's standard metric set on the registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		ChunksDone: reg.Counter("wym_matchjob_chunks_done_total",
			"Chunks processed to completion."),
		ChunksResumed: reg.Counter("wym_matchjob_chunks_resumed_total",
			"Chunks skipped on resume because their segment verified."),
		ChunksRetried: reg.Counter("wym_matchjob_chunks_retried_total",
			"Chunks re-run once after quarantined panics."),
		CandidatesEmitted: reg.Counter("wym_matchjob_candidates_emitted_total",
			"Candidate pairs produced by blocking and handed to the matcher."),
		CandidatesPruned: reg.Counter("wym_matchjob_candidates_pruned_total",
			"Candidate pairs dropped by the top-k-per-record cap."),
		Matches: reg.Counter("wym_matchjob_matches_total",
			"Match decisions emitted to the output."),
		RowErrors: reg.Counter("wym_matchjob_row_errors_total",
			"Candidate pairs still quarantined after the chunk retry."),
		IndexBytes: reg.Gauge("wym_matchjob_blocking_index_bytes",
			"Peak resident bytes of the blocking inverted index."),
		ChunkSeconds: reg.Histogram("wym_matchjob_chunk_seconds",
			"Per-chunk wall time (blocking + prediction + segment write).",
			obs.DefaultLatencyBuckets),
	}
}
