// Package matchjob runs full-table entity matching as a crash-safe batch
// job: blocking + batch prediction over the left table in fixed-size
// chunks, each chunk's results written to its own segment file and
// recorded in an atomically-updated WYMJOB manifest. A kill at any point
// loses at most the in-flight chunk; -resume verifies the manifest's
// fingerprints and each segment's SHA-256, then continues after the last
// valid chunk. Because the blocking stream emits a budget-independent,
// deterministic candidate set and prediction is deterministic in the
// model, an interrupted-and-resumed job produces byte-identical output to
// an uninterrupted one.
package matchjob

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"wym/internal/audit"
	"wym/internal/blocking"
	"wym/internal/data"
	"wym/internal/pipeline"
)

// Predictor is the prediction engine the job drives: pipeline.Engine
// satisfies it, and tests substitute fakes.
type Predictor interface {
	PredictBatch(ctx context.Context, pairs []data.Pair) []pipeline.Prediction
}

// Explainer is the additional engine capability audit recording needs;
// pipeline.Engine satisfies it.
type Explainer interface {
	Explain(p data.Pair) pipeline.Explanation
}

// AuditMeta is the model provenance stamped on every audit record a job
// writes.
type AuditMeta struct {
	Model      string  // model artifact path or registry name
	ArtifactFP string  // artifact fingerprint ("fnv64:...")
	FeedbackFP string  // folded-feedback fingerprint ("" when none)
	Threshold  float64 // decision threshold in force
	Route      string  // "match" or "dedup"
}

// Config tunes one matching job.
type Config struct {
	// ChunkSize is the number of left rows per chunk (default 1000). The
	// chunk is the unit of checkpointing: a kill loses at most one.
	ChunkSize int
	// Blocking configures candidate generation, including the index
	// memory budget and the top-k-per-record cap.
	Blocking blocking.StreamConfig
	// Dedup blocks the left table against itself (Left < Right pairs
	// only); the right table passed to New is ignored.
	Dedup bool
	// All emits every scored candidate instead of only match decisions.
	All bool
	// Dir is the job directory holding the manifest and result segments.
	Dir string
	// Out is the merged output CSV written when the job completes.
	Out string
	// Resume validates an existing manifest and skips verified chunks
	// instead of failing on leftover job state.
	Resume bool
	// ModelSum fingerprints the model so a resume with a different model
	// is rejected; callers hash the model file (FNV-64a).
	ModelSum uint64
	// Throttle pauses after each processed chunk. It paces the job (for
	// tests and load-shaping) and is excluded from the config
	// fingerprint: changing it never invalidates a resume.
	Throttle time.Duration
	// Metrics, when non-nil, receives the runner's counters, the index
	// gauge, and the per-chunk latency histogram.
	Metrics *Metrics
	// Audit, when non-nil, records every emitted decision with its
	// decision-unit explanation. Records for a chunk are appended only
	// after that chunk's manifest entry commits, so a resumed job never
	// double-records a replayed chunk (at-most-once: a crash between the
	// manifest write and the audit flush loses that chunk's records).
	// Requires the engine to implement Explainer.
	Audit *audit.Log
	// AuditMeta describes the model behind the audit records.
	AuditMeta AuditMeta
}

// RowError is one candidate pair that stayed quarantined after the chunk
// retry; the pair is skipped in the output and reported in the summary.
type RowError struct {
	Chunk       int
	Left, Right int
	Err         string
}

// Summary reports a finished (or cleanly interrupted) job.
type Summary struct {
	TotalChunks   int
	ChunksDone    int // processed in this run
	ChunksResumed int // skipped: already valid in the manifest
	ChunksRetried int
	Candidates    int64 // includes resumed chunks' recorded counts
	Pruned        int64 // top-k-capped pairs (this run only)
	Matches       int64
	RowErrors     int
	// RowErrorSamples holds the first few quarantined pairs for the job
	// report; RowErrors is the full count.
	RowErrorSamples []RowError
	// PeakIndexBytes is the blocking index's peak resident size.
	PeakIndexBytes int64
	// AuditRecords counts decisions recorded into the audit log in this
	// run (resumed chunks contribute nothing: they were recorded when
	// they first committed).
	AuditRecords int64
	// Interrupted is true when the job stopped at a chunk boundary after
	// context cancellation; the manifest makes the run resumable.
	Interrupted bool
}

const maxRowErrorSamples = 10

// Runner executes one full-table matching job.
type Runner struct {
	eng     Predictor
	explain Explainer // non-nil iff cfg.Audit is
	left    []data.Entity
	right   []data.Entity
	cfg     Config
}

// New prepares a job over two tables (or one, with cfg.Dedup). The tables
// and configuration are fingerprinted here; Run compares them against any
// existing manifest.
func New(eng Predictor, left, right []data.Entity, cfg Config) (*Runner, error) {
	if eng == nil {
		return nil, fmt.Errorf("matchjob: nil engine")
	}
	if cfg.Dir == "" || cfg.Out == "" {
		return nil, fmt.Errorf("matchjob: Dir and Out are required")
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 1000
	}
	if cfg.ChunkSize < 0 {
		return nil, fmt.Errorf("matchjob: negative ChunkSize %d", cfg.ChunkSize)
	}
	if cfg.Dedup {
		right = left
		cfg.Blocking.Self = true
	}
	if cfg.Metrics == nil {
		// An empty bundle's nil fields are nil-safe, so instrumentation
		// sites need no guards.
		cfg.Metrics = &Metrics{}
	}
	var explain Explainer
	if cfg.Audit != nil {
		var ok bool
		if explain, ok = eng.(Explainer); !ok {
			return nil, fmt.Errorf("matchjob: Audit requires an engine that can Explain")
		}
	}
	// Surface blocking config errors before any job state is created.
	if _, err := blocking.NewStreamer(left, right, cfg.Blocking); err != nil {
		return nil, err
	}
	return &Runner{eng: eng, explain: explain, left: left, right: right, cfg: cfg}, nil
}

// Run executes the job: resume validation, the chunk loop, and the final
// merge. Context cancellation is observed at chunk boundaries only — the
// in-flight chunk always drains, its segment and manifest entry are
// written, and Run returns a Summary with Interrupted set and a nil
// error. The caller restarts with Resume to continue.
func (r *Runner) Run(ctx context.Context) (*Summary, error) {
	cfg := r.cfg
	m := cfg.Metrics
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("matchjob: creating job dir: %w", err)
	}
	cfgSum := fingerprintConfig(cfg)
	leftSum := fingerprintTable(r.left)
	rightSum := fingerprintTable(r.right)

	man, err := loadManifest(cfg.Dir, cfgSum, leftSum, rightSum)
	if err != nil {
		return nil, err
	}
	switch {
	case man != nil && !cfg.Resume:
		return nil, fmt.Errorf("matchjob: job dir %s already has a manifest; pass Resume to continue it", cfg.Dir)
	case man == nil:
		man = &manifest{Magic: manifestMagic, Version: manifestVersion,
			CfgSum: cfgSum, LeftSum: leftSum, RightSum: rightSum}
	}

	stream, err := blocking.NewStreamer(r.left, r.right, cfg.Blocking)
	if err != nil {
		return nil, err
	}

	total := (len(r.left) + cfg.ChunkSize - 1) / cfg.ChunkSize
	sum := &Summary{TotalChunks: total, ChunksResumed: len(man.Chunks)}
	for _, c := range man.Chunks {
		sum.Candidates += int64(c.Candidates)
		sum.Matches += int64(c.Matches)
		sum.RowErrors += c.RowErrors
		m.ChunksResumed.Inc()
	}

	for id := len(man.Chunks); id < total; id++ {
		if ctx.Err() != nil {
			sum.Interrupted = true
			return sum, nil
		}
		start := id * cfg.ChunkSize
		end := start + cfg.ChunkSize
		if end > len(r.left) {
			end = len(r.left)
		}
		chunkStart := time.Now()
		rec, emitted, err := r.runChunk(ctx, stream, id, start, end, sum)
		if err != nil {
			return nil, err
		}
		man.Chunks = append(man.Chunks, rec)
		if err := writeManifest(cfg.Dir, man); err != nil {
			return nil, err
		}
		// Audit after the manifest commit: a chunk the manifest owns is
		// never re-run, so its decisions are recorded at most once.
		if cfg.Audit != nil {
			n, err := r.auditChunk(id, emitted)
			sum.AuditRecords += n
			if err != nil {
				return nil, err
			}
		}
		m.ChunksDone.Inc()
		m.ChunkSeconds.Observe(time.Since(chunkStart).Seconds())
		m.IndexBytes.Set(stream.Stats().PeakIndexBytes)
		sum.ChunksDone++
		sum.Candidates += int64(rec.Candidates)
		sum.Matches += int64(rec.Matches)
		sum.RowErrors += rec.RowErrors
		if cfg.Throttle > 0 {
			time.Sleep(cfg.Throttle)
		}
	}
	sum.Pruned = stream.Stats().Pruned
	sum.PeakIndexBytes = stream.Stats().PeakIndexBytes

	if err := r.merge(man); err != nil {
		return nil, err
	}
	if !man.Done {
		man.Done = true
		if err := writeManifest(cfg.Dir, man); err != nil {
			return nil, err
		}
	}
	return sum, nil
}

// emittedRow is one decision a chunk wrote to its segment, kept for
// audit recording after the chunk commits.
type emittedRow struct {
	Left, Right int
	Label       int
	Proba       float64
}

// runChunk blocks one left range, predicts the candidates, and writes the
// chunk's result segment atomically. Quarantined predictions trigger one
// whole-chunk retry; pairs still failing are skipped and reported. When
// auditing, the emitted rows are returned for post-commit recording.
func (r *Runner) runChunk(ctx context.Context, stream *blocking.Streamer, id, start, end int, sum *Summary) (chunkRecord, []emittedRow, error) {
	cfg := r.cfg
	cs, err := stream.Chunk(start, end)
	if err != nil {
		return chunkRecord{}, nil, err
	}
	var cands []blocking.Candidate
	for {
		c, ok := cs.Next()
		if !ok {
			break
		}
		cands = append(cands, c)
	}
	cfg.Metrics.CandidatesEmitted.Add(uint64(len(cands)))

	pairs := make([]data.Pair, len(cands))
	for i, c := range cands {
		pairs[i] = data.Pair{ID: i, Left: r.left[c.Left], Right: r.right[c.Right]}
	}
	// The in-flight chunk always drains: prediction runs on an
	// uncancelable child so SIGINT stops the job at the next boundary
	// with this chunk's work saved, not thrown away.
	predCtx := context.WithoutCancel(ctx)
	preds := r.eng.PredictBatch(predCtx, pairs)
	if quarantined(preds) {
		cfg.Metrics.ChunksRetried.Inc()
		sum.ChunksRetried++
		preds = r.eng.PredictBatch(predCtx, pairs)
	}

	rec := chunkRecord{ID: id, Start: start, End: end, Candidates: len(cands)}
	var buf bytes.Buffer
	var emitted []emittedRow
	for i, p := range preds {
		if p.Err != "" {
			rec.RowErrors++
			cfg.Metrics.RowErrors.Inc()
			if len(sum.RowErrorSamples) < maxRowErrorSamples {
				sum.RowErrorSamples = append(sum.RowErrorSamples,
					RowError{Chunk: id, Left: cands[i].Left, Right: cands[i].Right, Err: p.Err})
			}
			continue
		}
		if p.Label == data.Match {
			rec.Matches++
			cfg.Metrics.Matches.Inc()
		} else if !cfg.All {
			continue
		}
		buf.WriteString(strconv.Itoa(cands[i].Left))
		buf.WriteByte(',')
		buf.WriteString(strconv.Itoa(cands[i].Right))
		buf.WriteByte(',')
		buf.WriteString(strconv.Itoa(p.Label))
		buf.WriteByte(',')
		buf.WriteString(strconv.FormatFloat(p.Proba, 'f', 6, 64))
		buf.WriteByte('\n')
		if cfg.Audit != nil {
			emitted = append(emitted, emittedRow{
				Left: cands[i].Left, Right: cands[i].Right,
				Label: p.Label, Proba: p.Proba,
			})
		}
	}
	sha, err := writeSegment(cfg.Dir, id, buf.Bytes())
	if err != nil {
		return chunkRecord{}, nil, err
	}
	rec.SHA256 = sha
	return rec, emitted, nil
}

// auditChunk records one committed chunk's emitted decisions, each with
// a freshly computed decision-unit explanation (prediction is
// deterministic in the model, so the explanation matches the emitted
// proba), and flushes the log at the chunk boundary. An audit failure
// fails the run; the job itself stays resumable from its manifest.
func (r *Runner) auditChunk(id int, emitted []emittedRow) (int64, error) {
	meta := r.cfg.AuditMeta
	var n int64
	for _, row := range emitted {
		p := data.Pair{Left: r.left[row.Left], Right: r.right[row.Right]}
		start := time.Now()
		ex := r.explain.Explain(p)
		rec := audit.Record{
			RequestID:    fmt.Sprintf("c%06d:p%d-%d", id, row.Left, row.Right),
			TimeNanos:    time.Now().UnixNano(),
			Route:        meta.Route,
			Model:        meta.Model,
			ArtifactFP:   meta.ArtifactFP,
			FeedbackFP:   meta.FeedbackFP,
			Left:         p.Left,
			Right:        p.Right,
			Prediction:   row.Label,
			Proba:        row.Proba,
			Threshold:    meta.Threshold,
			Units:        audit.CompactUnits(ex),
			LatencyNanos: int64(time.Since(start)),
		}
		if err := r.cfg.Audit.Append(rec); err != nil {
			return n, fmt.Errorf("matchjob: auditing chunk %d: %w", id, err)
		}
		n++
	}
	if err := r.cfg.Audit.Sync(); err != nil {
		return n, fmt.Errorf("matchjob: flushing audit log after chunk %d: %w", id, err)
	}
	return n, nil
}

// quarantined reports whether any prediction in the batch failed.
func quarantined(preds []pipeline.Prediction) bool {
	for _, p := range preds {
		if p.Err != "" {
			return true
		}
	}
	return false
}

// writeSegment atomically writes one chunk's result rows and returns
// their SHA-256 hex digest.
func writeSegment(dir string, id int, payload []byte) (string, error) {
	dst := segmentPath(dir, id)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(dst)+".tmp*")
	if err != nil {
		return "", fmt.Errorf("matchjob: writing segment %d: %w", id, err)
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("matchjob: writing segment %d: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("matchjob: writing segment %d: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("matchjob: writing segment %d: %w", id, err)
	}
	sum, err := fileSHA256(dst)
	if err != nil {
		return "", fmt.Errorf("matchjob: hashing segment %d: %w", id, err)
	}
	return sum, nil
}

// merge concatenates all segments, in chunk order, under a header row and
// atomically replaces the output file. Merging is idempotent: a kill
// between merge and the final manifest write just re-merges on resume.
func (r *Runner) merge(man *manifest) error {
	dir := filepath.Dir(r.cfg.Out)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(r.cfg.Out)+".tmp*")
	if err != nil {
		return fmt.Errorf("matchjob: writing output: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.WriteString("left,right,label,proba\n"); err != nil {
		cleanup()
		return fmt.Errorf("matchjob: writing output: %w", err)
	}
	for _, c := range man.Chunks {
		seg, err := os.Open(segmentPath(r.cfg.Dir, c.ID))
		if err != nil {
			cleanup()
			return fmt.Errorf("matchjob: merging chunk %d: %w", c.ID, err)
		}
		_, err = io.Copy(tmp, seg)
		seg.Close()
		if err != nil {
			cleanup()
			return fmt.Errorf("matchjob: merging chunk %d: %w", c.ID, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("matchjob: writing output: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.cfg.Out); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("matchjob: writing output: %w", err)
	}
	return nil
}

// ReadMatches loads a merged output file back as (left, right) index
// pairs — what eval's pair-quality metrics consume.
func ReadMatches(path string) ([][2]int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("matchjob: %w", err)
	}
	var out [][2]int
	for i, line := range bytes.Split(raw, []byte{'\n'}) {
		if i == 0 || len(line) == 0 {
			continue
		}
		fields := bytes.SplitN(line, []byte{','}, 4)
		if len(fields) < 4 {
			return nil, fmt.Errorf("matchjob: %s line %d: malformed row %q", path, i+1, line)
		}
		li, err1 := strconv.Atoi(string(fields[0]))
		ri, err2 := strconv.Atoi(string(fields[1]))
		label, err3 := strconv.Atoi(string(fields[2]))
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("matchjob: %s line %d: malformed row %q", path, i+1, line)
		}
		if label == data.Match {
			out = append(out, [2]int{li, ri})
		}
	}
	return out, nil
}
