package matchjob

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wym/internal/blocking"
	"wym/internal/data"
	"wym/internal/datagen"
	"wym/internal/eval"
	"wym/internal/obs"
	"wym/internal/pipeline"
	"wym/internal/tokenize"
)

// fakeEngine predicts deterministically from pair content (shared-token
// count), with an optional per-batch failure hook.
type fakeEngine struct {
	batches int
	// fail, when non-nil, returns a quarantine message for a pair given
	// the 1-based batch call number.
	fail func(batch int, p data.Pair) string
	// onBatch runs after each batch (cancellation hooks).
	onBatch func(batch int)
}

func (f *fakeEngine) PredictBatch(ctx context.Context, pairs []data.Pair) []pipeline.Prediction {
	f.batches++
	out := make([]pipeline.Prediction, len(pairs))
	for i, p := range pairs {
		if f.fail != nil {
			if msg := f.fail(f.batches, p); msg != "" {
				out[i] = pipeline.Prediction{Err: msg}
				continue
			}
		}
		out[i] = scorePair(p)
	}
	if f.onBatch != nil {
		f.onBatch(f.batches)
	}
	return out
}

// scorePair is the deterministic stand-in matcher: token-set Jaccard
// with a 0.5 threshold.
func scorePair(p data.Pair) pipeline.Prediction {
	left := map[string]bool{}
	for _, v := range p.Left {
		for _, t := range tokenize.SplitWords(v) {
			left[t] = true
		}
	}
	right := map[string]bool{}
	shared := 0
	for _, v := range p.Right {
		for _, t := range tokenize.SplitWords(v) {
			if right[t] {
				continue
			}
			right[t] = true
			if left[t] {
				shared++
			}
		}
	}
	union := len(left) + len(right) - shared
	var jac float64
	if union > 0 {
		jac = float64(shared) / float64(union)
	}
	pred := pipeline.Prediction{Proba: jac}
	if jac >= 0.5 {
		pred.Label = data.Match
	}
	return pred
}

// jobTables returns a small deterministic table pair with ground truth.
func jobTables(t *testing.T, rows int) *datagen.TablePair {
	t.Helper()
	p, ok := datagen.ProfileByKey("S-FZ")
	if !ok {
		t.Fatal("profile S-FZ missing")
	}
	return datagen.GenerateTables(p, rows, 0.3)
}

// jobConfig returns a Config over fresh temp dirs with small chunks.
func jobConfig(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	bcfg := blocking.DefaultStreamConfig()
	bcfg.MaxDF = 0.05
	return Config{
		ChunkSize: 25,
		Blocking:  bcfg,
		Dir:       filepath.Join(dir, "job"),
		Out:       filepath.Join(dir, "matches.csv"),
	}
}

func runJob(t *testing.T, eng Predictor, left, right []data.Entity, cfg Config) *Summary {
	t.Helper()
	r, err := New(eng, left, right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestRunFullJob(t *testing.T) {
	tp := jobTables(t, 120)
	cfg := jobConfig(t)
	reg := obs.NewRegistry()
	cfg.Metrics = NewMetrics(reg)
	sum := runJob(t, &fakeEngine{}, tp.Left, tp.Right, cfg)

	if sum.Interrupted {
		t.Fatal("uninterrupted job reported Interrupted")
	}
	if sum.TotalChunks != 5 || sum.ChunksDone != 5 || sum.ChunksResumed != 0 {
		t.Fatalf("chunk accounting: %+v", sum)
	}
	if sum.Candidates == 0 || sum.Matches == 0 {
		t.Fatalf("no work done: %+v", sum)
	}
	if cfg.Metrics.ChunksDone.Value() != 5 {
		t.Fatalf("metrics chunks done = %d", cfg.Metrics.ChunksDone.Value())
	}
	if int64(cfg.Metrics.CandidatesEmitted.Value()) != sum.Candidates {
		t.Fatalf("metrics candidates = %d, summary %d", cfg.Metrics.CandidatesEmitted.Value(), sum.Candidates)
	}

	raw, err := os.ReadFile(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if lines[0] != "left,right,label,proba" {
		t.Fatalf("header = %q", lines[0])
	}
	if int64(len(lines)-1) != sum.Matches {
		t.Fatalf("output has %d rows, summary says %d matches", len(lines)-1, sum.Matches)
	}

	matches, err := ReadMatches(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	q := eval.NewPairQuality(matches, tp.Truth)
	if q.Recall() < 0.9 || q.Precision() < 0.9 {
		t.Fatalf("pair quality on easy tables: %+v p=%v r=%v", q, q.Precision(), q.Recall())
	}
}

func TestInterruptAndResumeByteIdentical(t *testing.T) {
	tp := jobTables(t, 120)

	// Reference: one uninterrupted run.
	ref := jobConfig(t)
	runJob(t, &fakeEngine{}, tp.Left, tp.Right, ref)
	want, err := os.ReadFile(ref.Out)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the second chunk's batch; the
	// in-flight chunk must drain, then the loop stops at the boundary.
	cfg := jobConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := &fakeEngine{onBatch: func(batch int) {
		if batch == 2 {
			cancel()
		}
	}}
	r, err := New(eng, tp.Left, tp.Right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Interrupted {
		t.Fatal("canceled run not marked Interrupted")
	}
	if sum.ChunksDone != 2 {
		t.Fatalf("drained %d chunks, want 2", sum.ChunksDone)
	}
	if _, err := os.Stat(cfg.Out); !os.IsNotExist(err) {
		t.Fatal("interrupted run wrote the merged output")
	}

	// Resume and compare bytes.
	cfg.Resume = true
	sum = runJob(t, &fakeEngine{}, tp.Left, tp.Right, cfg)
	if sum.ChunksResumed != 2 || sum.ChunksDone != 3 {
		t.Fatalf("resume accounting: %+v", sum)
	}
	got, err := os.ReadFile(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed output differs from uninterrupted run")
	}
}

func TestResumeRecomputesCorruptSegment(t *testing.T) {
	tp := jobTables(t, 100)

	ref := jobConfig(t)
	runJob(t, &fakeEngine{}, tp.Left, tp.Right, ref)
	want, _ := os.ReadFile(ref.Out)

	cfg := jobConfig(t)
	runJob(t, &fakeEngine{}, tp.Left, tp.Right, cfg)
	// Corrupt the second segment: its SHA-256 no longer matches, so the
	// resume must recompute it and everything after it.
	if err := os.WriteFile(segmentPath(cfg.Dir, 1), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	sum := runJob(t, &fakeEngine{}, tp.Left, tp.Right, cfg)
	if sum.ChunksResumed != 1 {
		t.Fatalf("resumed %d chunks, want only the pre-corruption prefix (1)", sum.ChunksResumed)
	}
	got, err := os.ReadFile(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered output differs from clean run")
	}
}

func TestResumeRejectsMismatch(t *testing.T) {
	tp := jobTables(t, 60)
	cfg := jobConfig(t)
	runJob(t, &fakeEngine{}, tp.Left, tp.Right, cfg)

	// Different chunk size -> different job.
	mism := cfg
	mism.Resume = true
	mism.ChunkSize = 30
	r, err := New(&fakeEngine{}, tp.Left, tp.Right, mism)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("chunk-size change: err = %v, want ErrManifestMismatch", err)
	}

	// Different table -> different job.
	mut := append([]data.Entity{}, tp.Left...)
	mut[0] = data.Entity{"tampered", "row", "0"}
	cfg.Resume = true
	r, err = New(&fakeEngine{}, mut, tp.Right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("table change: err = %v, want ErrManifestMismatch", err)
	}

	// Same job but no Resume flag -> refuse to clobber.
	cfg.Resume = false
	r, err = New(&fakeEngine{}, tp.Left, tp.Right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatal("existing manifest accepted without Resume")
	}

	// Throttle is pacing only: changing it must NOT invalidate a resume.
	cfg.Resume = true
	cfg.Throttle = 1
	sum := runJob(t, &fakeEngine{}, tp.Left, tp.Right, cfg)
	if sum.ChunksResumed != sum.TotalChunks {
		t.Fatalf("throttle change invalidated chunks: %+v", sum)
	}
}

func TestRetryOnceOnQuarantine(t *testing.T) {
	tp := jobTables(t, 50)
	cfg := jobConfig(t)
	// Every odd batch call fails entirely; the retry (even call) succeeds.
	eng := &fakeEngine{fail: func(batch int, p data.Pair) string {
		if batch%2 == 1 {
			return "induced panic"
		}
		return ""
	}}
	sum := runJob(t, eng, tp.Left, tp.Right, cfg)
	if sum.ChunksRetried != sum.TotalChunks {
		t.Fatalf("retried %d of %d chunks", sum.ChunksRetried, sum.TotalChunks)
	}
	if sum.RowErrors != 0 {
		t.Fatalf("retry should clear quarantines, got %d row errors", sum.RowErrors)
	}
}

func TestPersistentRowErrorsReported(t *testing.T) {
	tp := jobTables(t, 50)
	cfg := jobConfig(t)
	eng := &fakeEngine{fail: func(batch int, p data.Pair) string {
		return "always broken"
	}}
	sum := runJob(t, eng, tp.Left, tp.Right, cfg)
	if sum.RowErrors == 0 {
		t.Fatal("persistent quarantines not counted")
	}
	if int64(sum.RowErrors) != sum.Candidates {
		t.Fatalf("row errors %d, candidates %d", sum.RowErrors, sum.Candidates)
	}
	if len(sum.RowErrorSamples) == 0 || len(sum.RowErrorSamples) > maxRowErrorSamples {
		t.Fatalf("samples = %d", len(sum.RowErrorSamples))
	}
	if sum.RowErrorSamples[0].Err != "always broken" {
		t.Fatalf("sample = %+v", sum.RowErrorSamples[0])
	}
	if sum.Matches != 0 {
		t.Fatalf("quarantined rows produced matches: %+v", sum)
	}
	raw, err := os.ReadFile(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(string(raw), "\n"); got != "left,right,label,proba" {
		t.Fatalf("quarantined rows leaked into output: %q", got)
	}
}

func TestDedupJob(t *testing.T) {
	table := []data.Entity{
		{"digital camera x100 pro", "fuji", "499"},
		{"digital camera x100 pro max", "fuji", "489"},
		{"espresso maker deluxe", "delonghi", "120"},
		{"lawn mower gx", "bosch", "300"},
	}
	cfg := jobConfig(t)
	cfg.ChunkSize = 2
	cfg.Dedup = true
	cfg.Blocking.MaxDF = 1.0
	sum := runJob(t, &fakeEngine{}, table, nil, cfg)
	if sum.Matches != 1 {
		t.Fatalf("dedup matches = %d, want 1: %+v", sum.Matches, sum)
	}
	matches, err := ReadMatches(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0] != [2]int{0, 1} {
		t.Fatalf("dedup pairs = %v", matches)
	}
}

func TestAllEmitsNonMatches(t *testing.T) {
	tp := jobTables(t, 60)
	cfg := jobConfig(t)
	cfg.All = true
	sum := runJob(t, &fakeEngine{}, tp.Left, tp.Right, cfg)
	raw, err := os.ReadFile(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Count(string(raw), "\n") - 1
	if int64(rows) != sum.Candidates {
		t.Fatalf("All mode wrote %d rows, candidates %d", rows, sum.Candidates)
	}
	if sum.Matches >= sum.Candidates {
		t.Fatalf("expected some non-matches: %+v", sum)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	table := []data.Entity{{"a"}}
	good := jobConfig(t)
	if _, err := New(nil, table, table, good); err == nil {
		t.Fatal("nil engine accepted")
	}
	bad := good
	bad.Dir = ""
	if _, err := New(&fakeEngine{}, table, table, bad); err == nil {
		t.Fatal("missing Dir accepted")
	}
	bad = good
	bad.ChunkSize = -1
	if _, err := New(&fakeEngine{}, table, table, bad); err == nil {
		t.Fatal("negative ChunkSize accepted")
	}
	bad = good
	bad.Blocking.MaxDF = -2
	if _, err := New(&fakeEngine{}, table, table, bad); !errors.Is(err, blocking.ErrInvalidConfig) {
		t.Fatalf("bad blocking config: %v", err)
	}
}

func TestReadMatchesErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	if _, err := ReadMatches(path); err == nil {
		t.Fatal("missing file accepted")
	}
	os.WriteFile(path, []byte("left,right,label,proba\n1,2\n"), 0o644)
	if _, err := ReadMatches(path); err == nil {
		t.Fatal("short row accepted")
	}
	os.WriteFile(path, []byte("left,right,label,proba\nx,2,1,0.5\n"), 0o644)
	if _, err := ReadMatches(path); err == nil {
		t.Fatal("non-integer index accepted")
	}
}

// TestRunFilesystemFailures covers the job's filesystem error paths: a
// job dir blocked by a plain file, an output directory that does not
// exist (merge cannot land), and segment/manifest writes into a missing
// directory.
func TestRunFilesystemFailures(t *testing.T) {
	tp := jobTables(t, 60)
	dir := t.TempDir()

	// Job dir is an existing regular file: MkdirAll must fail.
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := jobConfig(t)
	cfg.Dir = blocked
	r, err := New(&fakeEngine{}, tp.Left, tp.Right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatal("job dir blocked by a file, Run succeeded")
	}

	// Output directory missing: the chunks complete but the merge fails.
	cfg = jobConfig(t)
	cfg.Out = filepath.Join(dir, "no-such-dir", "out.csv")
	r, err = New(&fakeEngine{}, tp.Left, tp.Right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatal("missing output directory, Run succeeded")
	}

	missing := filepath.Join(dir, "nope")
	if _, err := writeSegment(missing, 0, []byte("row\n")); err == nil {
		t.Fatal("writeSegment into a missing directory succeeded")
	}
	if err := writeManifest(missing, &manifest{Magic: manifestMagic, Version: manifestVersion}); err == nil {
		t.Fatal("writeManifest into a missing directory succeeded")
	}
}
