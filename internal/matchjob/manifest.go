package matchjob

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"wym/internal/data"
)

const (
	manifestMagic   = "WYMJOB"
	manifestVersion = 1
	manifestName    = "job.json"
)

// ErrManifestMismatch is returned when -resume finds a manifest written
// by a different job: other tables, another configuration, or another
// model. Resuming such a run would silently mix outputs, so the mismatch
// is a named, checkable failure.
var ErrManifestMismatch = errors.New("matchjob: manifest does not match this job")

// chunkRecord is one completed chunk in the manifest: its half-open left
// range, its counts, and the SHA-256 of its result segment so resume can
// detect a truncated or corrupted segment file.
type chunkRecord struct {
	ID         int    `json:"id"`
	Start      int    `json:"start"`
	End        int    `json:"end"`
	Candidates int    `json:"candidates"`
	Matches    int    `json:"matches"`
	RowErrors  int    `json:"row_errors"`
	SHA256     string `json:"sha256"`
}

// manifest is the WYMJOB job state, serialized as JSON and rewritten
// atomically after every chunk. A kill at any point leaves either the
// previous manifest or the new one — never a torn file — so at most one
// chunk of work is lost.
type manifest struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// CfgSum fingerprints the job configuration (chunking, blocking knobs,
	// output mode, model); LeftSum/RightSum fingerprint the two input
	// tables. All three must match for a resume to be valid.
	CfgSum   uint64        `json:"cfg_sum"`
	LeftSum  uint64        `json:"left_sum"`
	RightSum uint64        `json:"right_sum"`
	Chunks   []chunkRecord `json:"chunks"`
	Done     bool          `json:"done"`
}

// fingerprintConfig hashes the parts of the configuration that determine
// the job's output. Throttle is excluded: it only paces chunks and must
// not invalidate a resume.
func fingerprintConfig(cfg Config) uint64 {
	h := fnv.New64a()
	b := cfg.Blocking
	fmt.Fprintf(h, "chunk=%d dedup=%t all=%t model=%d", cfg.ChunkSize, cfg.Dedup, cfg.All, cfg.ModelSum)
	fmt.Fprintf(h, " maxdf=%v minshared=%d jaccard=%v attrs=%v budget=%d topk=%d",
		b.MaxDF, b.MinShared, b.JaccardFloor, b.Attrs, b.MemoryBudget, b.TopK)
	return h.Sum64()
}

// fingerprintTable hashes every attribute value of a table in row order.
func fingerprintTable(rows []data.Entity) uint64 {
	h := fnv.New64a()
	for _, row := range rows {
		fmt.Fprintf(h, "%q\x00", row)
	}
	return h.Sum64()
}

// manifestPath returns the manifest file inside a job directory.
func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// segmentPath returns the result-segment file for a chunk.
func segmentPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("chunk-%06d.csv", id))
}

// writeManifest atomically replaces the manifest (temp file + rename).
func writeManifest(dir string, m *manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("matchjob: encoding manifest: %w", err)
	}
	buf = append(buf, '\n')
	tmp, err := os.CreateTemp(dir, ".job.json.tmp*")
	if err != nil {
		return fmt.Errorf("matchjob: writing manifest: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("matchjob: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("matchjob: writing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), manifestPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("matchjob: writing manifest: %w", err)
	}
	return nil
}

// loadManifest reads and validates a manifest against this job's
// fingerprints, then verifies each recorded chunk's segment file digest.
// It returns the longest valid prefix of completed chunks: the first
// missing or corrupted segment (and everything after it) is discarded and
// recomputed rather than trusted. A missing manifest returns (nil, nil).
func loadManifest(dir string, cfgSum, leftSum, rightSum uint64) (*manifest, error) {
	raw, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("matchjob: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("matchjob: decoding manifest: %w", err)
	}
	switch {
	case m.Magic != manifestMagic:
		return nil, fmt.Errorf("%w: bad magic %q", ErrManifestMismatch, m.Magic)
	case m.Version != manifestVersion:
		return nil, fmt.Errorf("%w: manifest version %d, want %d", ErrManifestMismatch, m.Version, manifestVersion)
	case m.CfgSum != cfgSum:
		return nil, fmt.Errorf("%w: configuration changed since the interrupted run", ErrManifestMismatch)
	case m.LeftSum != leftSum:
		return nil, fmt.Errorf("%w: left table changed since the interrupted run", ErrManifestMismatch)
	case m.RightSum != rightSum:
		return nil, fmt.Errorf("%w: right table changed since the interrupted run", ErrManifestMismatch)
	}
	// Keep only the contiguous prefix of chunks whose segments verify.
	valid := 0
	for i, c := range m.Chunks {
		if c.ID != i {
			break
		}
		sum, err := fileSHA256(segmentPath(dir, c.ID))
		if err != nil || sum != c.SHA256 {
			break
		}
		valid = i + 1
	}
	m.Chunks = m.Chunks[:valid]
	return &m, nil
}

// fileSHA256 returns the hex digest of a file's contents.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
