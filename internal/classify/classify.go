// Package classify implements the pool of ten interpretable binary
// classifiers the explainable matcher selects from (§4.3 of the paper):
// logistic regression, linear discriminant analysis, k-nearest neighbours,
// a CART decision tree, Gaussian naive Bayes, a linear SVM, AdaBoost,
// gradient boosting, random forest and extra trees — all from scratch on
// the standard library.
//
// Every model exposes signed per-feature Coefficients used by the inverse
// feature transformation that turns model weights into decision-unit
// impact scores. For linear models these are the fitted weights; for the
// non-linear models they are impurity- or margin-based importances signed
// by the feature's point-biserial correlation with the label, a documented
// proxy (DESIGN.md §2).
package classify

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"wym/internal/vec"
)

// Classifier is a binary classifier over dense feature vectors. Labels are
// 0 (non-match) and 1 (match).
type Classifier interface {
	// Name identifies the model family (e.g. "LR", "RF").
	Name() string
	// Fit trains on the given matrix; it may be called once per instance.
	Fit(x [][]float64, y []int) error
	// PredictProba returns P(label == 1 | x).
	PredictProba(x []float64) float64
	// Coefficients returns a signed importance per input feature. It must
	// be called only after Fit.
	Coefficients() []float64
}

// Predict thresholds PredictProba at 0.5.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictAll applies Predict to every row.
func PredictAll(c Classifier, x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = Predict(c, row)
	}
	return out
}

// ErrEmptyTrainingSet is returned by Fit when there is nothing to train on.
var ErrEmptyTrainingSet = errors.New("classify: empty training set")

func checkTrainingSet(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ErrEmptyTrainingSet
	}
	if len(x) != len(y) {
		return fmt.Errorf("classify: %d rows but %d labels", len(x), len(y))
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return fmt.Errorf("classify: row %d has %d features, want %d", i, len(row), d)
		}
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return fmt.Errorf("classify: label %d at row %d", v, i)
		}
	}
	return nil
}

// Standardized wraps a classifier with z-score feature standardization
// fitted on the training data. Standardization makes the coefficient
// magnitudes of the pool comparable across engineered features with very
// different scales (counts vs means).
type Standardized struct {
	Inner      Classifier
	mean, std  []float64
	fitted     bool
	constantIx map[int]bool
}

// NewStandardized wraps inner.
func NewStandardized(inner Classifier) *Standardized {
	return &Standardized{Inner: inner}
}

// Name implements Classifier.
func (s *Standardized) Name() string { return s.Inner.Name() }

// Fit implements Classifier.
func (s *Standardized) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	d := len(x[0])
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	s.constantIx = make(map[int]bool)
	col := make([]float64, len(x))
	for j := 0; j < d; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		m, sd := vec.MeanStd(col)
		s.mean[j] = m
		if sd == 0 {
			sd = 1
			s.constantIx[j] = true
		}
		s.std[j] = sd
	}
	xs := make([][]float64, len(x))
	for i := range x {
		xs[i] = s.transform(x[i])
	}
	s.fitted = true
	return s.Inner.Fit(xs, y)
}

func (s *Standardized) transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// PredictProba implements Classifier.
func (s *Standardized) PredictProba(x []float64) float64 {
	if !s.fitted {
		panic("classify: Standardized.PredictProba before Fit")
	}
	return s.Inner.PredictProba(s.transform(x))
}

// Coefficients implements Classifier: inner coefficients are returned in
// the standardized space with constant features zeroed.
func (s *Standardized) Coefficients() []float64 {
	coef := vec.Clone(s.Inner.Coefficients())
	for j := range coef {
		if s.constantIx[j] {
			coef[j] = 0
		}
	}
	return coef
}

// signedImportance converts a non-negative importance vector into a signed
// one using the point-biserial correlation of each feature with the label.
func signedImportance(importance []float64, x [][]float64, y []int) []float64 {
	out := make([]float64, len(importance))
	labels := make([]float64, len(y))
	for i, v := range y {
		labels[i] = float64(v)
	}
	col := make([]float64, len(x))
	for j := range importance {
		for i := range x {
			col[i] = x[i][j]
		}
		r := vec.Pearson(col, labels)
		sign := 1.0
		if r < 0 {
			sign = -1
		}
		out[j] = sign * importance[j]
	}
	return out
}

// Score is one row of a model-selection report.
type Score struct {
	Name      string
	F1        float64
	Precision float64
	Recall    float64
}

// f1Score computes precision, recall and F1 of predictions against labels
// with the match class as positive.
func f1Score(pred, y []int) (precision, recall, f1 float64) {
	var tp, fp, fn int
	for i := range y {
		switch {
		case pred[i] == 1 && y[i] == 1:
			tp++
		case pred[i] == 1 && y[i] == 0:
			fp++
		case pred[i] == 0 && y[i] == 1:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// NewPool returns fresh instances of all ten classifiers in the paper's
// order (LR, LDA, KNN, DT, NB, SVM, AB, GBM, RF, ET), each wrapped with
// feature standardization, seeded deterministically from seed.
func NewPool(seed int64) []Classifier {
	return []Classifier{
		NewStandardized(NewLogisticRegression()),
		NewStandardized(NewLDA()),
		NewStandardized(NewKNN(5)),
		NewStandardized(NewDecisionTree(seed)),
		NewStandardized(NewGaussianNB()),
		NewStandardized(NewLinearSVM(seed)),
		NewStandardized(NewAdaBoost(seed)),
		NewStandardized(NewGBM(seed)),
		NewStandardized(NewRandomForest(seed)),
		NewStandardized(NewExtraTrees(seed)),
	}
}

// SelectBest fits every candidate on the training set, scores it on the
// validation set, and returns the classifier with the best validation F1
// together with the full report (sorted by descending F1, name on ties).
// Candidates whose Fit fails are skipped; an error is returned only if
// every candidate fails.
func SelectBest(candidates []Classifier, xTrain [][]float64, yTrain []int,
	xValid [][]float64, yValid []int) (Classifier, []Score, error) {
	var best Classifier
	bestF1 := -1.0
	var report []Score
	var lastErr error
	for _, c := range candidates {
		if err := c.Fit(xTrain, yTrain); err != nil {
			lastErr = fmt.Errorf("%s: %w", c.Name(), err)
			continue
		}
		p, r, f1 := f1Score(PredictAll(c, xValid), yValid)
		report = append(report, Score{Name: c.Name(), F1: f1, Precision: p, Recall: r})
		if f1 > bestF1 {
			best, bestF1 = c, f1
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("classify: all candidates failed, last error: %w", lastErr)
	}
	sort.Slice(report, func(i, j int) bool {
		if report[i].F1 != report[j].F1 {
			return report[i].F1 > report[j].F1
		}
		return report[i].Name < report[j].Name
	})
	return best, report, nil
}

// sigmoid is the logistic function.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }
