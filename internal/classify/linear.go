package classify

import (
	"math"
	"math/rand"

	"wym/internal/vec"
)

// LogisticRegression is L2-regularized logistic regression trained with
// full-batch gradient descent. It is the canonical interpretable matcher:
// its coefficients are exactly the per-feature log-odds weights.
type LogisticRegression struct {
	// Epochs, LR and L2 may be tuned before Fit; NewLogisticRegression
	// sets practical defaults.
	Epochs int
	LR     float64
	L2     float64

	w []float64
	b float64
}

// NewLogisticRegression returns a model with the repo defaults.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{Epochs: 300, LR: 0.1, L2: 1e-3}
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "LR" }

// Fit implements Classifier.
func (m *LogisticRegression) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	d := len(x[0])
	m.w = make([]float64, d)
	m.b = 0
	n := float64(len(x))
	gw := make([]float64, d)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range gw {
			gw[j] = 0
		}
		var gb float64
		for i, row := range x {
			p := sigmoid(vec.Dot(m.w, row) + m.b)
			diff := p - float64(y[i])
			vec.AXPY(gw, diff, row)
			gb += diff
		}
		for j := range m.w {
			m.w[j] -= m.LR * (gw[j]/n + m.L2*m.w[j])
		}
		m.b -= m.LR * gb / n
	}
	return nil
}

// PredictProba implements Classifier.
func (m *LogisticRegression) PredictProba(x []float64) float64 {
	return sigmoid(vec.Dot(m.w, x) + m.b)
}

// Coefficients implements Classifier.
func (m *LogisticRegression) Coefficients() []float64 { return vec.Clone(m.w) }

// LDA is Fisher's linear discriminant analysis with a ridge-stabilized
// pooled covariance. The discriminant direction w = Σ⁻¹(μ₁-μ₀) is the
// coefficient vector.
type LDA struct {
	Ridge float64

	w         []float64
	threshold float64
}

// NewLDA returns an LDA with a small default ridge.
func NewLDA() *LDA { return &LDA{Ridge: 1e-3} }

// Name implements Classifier.
func (m *LDA) Name() string { return "LDA" }

// Fit implements Classifier.
func (m *LDA) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	d := len(x[0])
	mean := [2][]float64{make([]float64, d), make([]float64, d)}
	count := [2]int{}
	for i, row := range x {
		vec.Add(mean[y[i]], row)
		count[y[i]]++
	}
	if count[0] == 0 || count[1] == 0 {
		// Degenerate single-class training set: predict the constant class.
		m.w = make([]float64, d)
		if count[1] > 0 {
			m.threshold = math.Inf(-1) // everything scores above it
		} else {
			m.threshold = math.Inf(1)
		}
		return nil
	}
	for c := 0; c < 2; c++ {
		vec.Scale(mean[c], 1/float64(count[c]))
	}

	// Pooled within-class covariance.
	cov := vec.NewMatrix(d, d)
	for i, row := range x {
		diff := vec.Sub(row, mean[y[i]])
		for a := 0; a < d; a++ {
			if diff[a] == 0 {
				continue
			}
			for b := 0; b < d; b++ {
				cov.AddAt(a, b, diff[a]*diff[b])
			}
		}
	}
	denom := float64(len(x) - 2)
	if denom < 1 {
		denom = 1
	}
	for i := range cov.Data {
		cov.Data[i] /= denom
	}

	diffMean := vec.Sub(mean[1], mean[0])
	w, err := vec.Solve(cov, diffMean, m.Ridge)
	if err != nil {
		// Extremely collinear features even under ridge: fall back to the
		// mean-difference direction, which keeps the model usable.
		w = diffMean
	}
	m.w = w
	mid := vec.Mean(mean[0], mean[1])
	prior := math.Log(float64(count[1]) / float64(count[0]))
	m.threshold = vec.Dot(m.w, mid) - prior
	return nil
}

// PredictProba implements Classifier.
func (m *LDA) PredictProba(x []float64) float64 {
	if math.IsInf(m.threshold, -1) {
		return 1
	}
	if math.IsInf(m.threshold, 1) {
		return 0
	}
	return sigmoid(vec.Dot(m.w, x) - m.threshold)
}

// Coefficients implements Classifier.
func (m *LDA) Coefficients() []float64 { return vec.Clone(m.w) }

// GaussianNB is Gaussian naive Bayes with per-class feature means and
// variances. Its coefficient proxy is the standardized mean difference
// (μ₁ⱼ-μ₀ⱼ)/σ²ⱼ — the weight the log-likelihood ratio assigns to feature
// j under equal variances.
type GaussianNB struct {
	VarSmoothing float64

	mean, variance [2][]float64
	logPrior       [2]float64
	fitted         bool
	singleClass    int // -1 when both classes present
}

// NewGaussianNB returns a model with sklearn-compatible smoothing.
func NewGaussianNB() *GaussianNB { return &GaussianNB{VarSmoothing: 1e-9} }

// Name implements Classifier.
func (m *GaussianNB) Name() string { return "NB" }

// Fit implements Classifier.
func (m *GaussianNB) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	d := len(x[0])
	count := [2]int{}
	for c := 0; c < 2; c++ {
		m.mean[c] = make([]float64, d)
		m.variance[c] = make([]float64, d)
	}
	for i, row := range x {
		vec.Add(m.mean[y[i]], row)
		count[y[i]]++
	}
	m.singleClass = -1
	if count[0] == 0 || count[1] == 0 {
		if count[1] > 0 {
			m.singleClass = 1
		} else {
			m.singleClass = 0
		}
		m.fitted = true
		return nil
	}
	for c := 0; c < 2; c++ {
		vec.Scale(m.mean[c], 1/float64(count[c]))
		m.logPrior[c] = math.Log(float64(count[c]) / float64(len(x)))
	}
	// Largest feature variance for smoothing scale, as in scikit-learn.
	var maxVar float64
	for i, row := range x {
		for j, v := range row {
			diff := v - m.mean[y[i]][j]
			m.variance[y[i]][j] += diff * diff
		}
	}
	for c := 0; c < 2; c++ {
		for j := range m.variance[c] {
			m.variance[c][j] /= float64(count[c])
			if m.variance[c][j] > maxVar {
				maxVar = m.variance[c][j]
			}
		}
	}
	eps := m.VarSmoothing * maxVar
	if eps == 0 {
		eps = m.VarSmoothing
	}
	for c := 0; c < 2; c++ {
		for j := range m.variance[c] {
			m.variance[c][j] += eps
		}
	}
	m.fitted = true
	return nil
}

// PredictProba implements Classifier.
func (m *GaussianNB) PredictProba(x []float64) float64 {
	if m.singleClass >= 0 {
		return float64(m.singleClass)
	}
	var ll [2]float64
	for c := 0; c < 2; c++ {
		ll[c] = m.logPrior[c]
		for j, v := range x {
			diff := v - m.mean[c][j]
			ll[c] += -0.5*math.Log(2*math.Pi*m.variance[c][j]) - diff*diff/(2*m.variance[c][j])
		}
	}
	// Softmax over the two log-likelihoods, stabilized.
	mx := math.Max(ll[0], ll[1])
	e0, e1 := math.Exp(ll[0]-mx), math.Exp(ll[1]-mx)
	return e1 / (e0 + e1)
}

// Coefficients implements Classifier.
func (m *GaussianNB) Coefficients() []float64 {
	if m.singleClass >= 0 {
		return make([]float64, len(m.mean[0]))
	}
	d := len(m.mean[0])
	out := make([]float64, d)
	for j := 0; j < d; j++ {
		pooled := (m.variance[0][j] + m.variance[1][j]) / 2
		out[j] = (m.mean[1][j] - m.mean[0][j]) / pooled
	}
	return out
}

// LinearSVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm on the hinge loss. PredictProba maps
// the margin through a fixed logistic link (an un-calibrated Platt
// scaling, sufficient for 0.5-thresholded decisions).
type LinearSVM struct {
	Lambda float64
	Epochs int
	seed   int64

	w []float64
	b float64
}

// NewLinearSVM returns a model with the repo defaults.
func NewLinearSVM(seed int64) *LinearSVM {
	return &LinearSVM{Lambda: 1e-3, Epochs: 40, seed: seed}
}

// Name implements Classifier.
func (m *LinearSVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (m *LinearSVM) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	d := len(x[0])
	m.w = make([]float64, d)
	m.b = 0
	rng := rand.New(rand.NewSource(m.seed))
	t := 0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		order := rng.Perm(len(x))
		for _, i := range order {
			t++
			eta := 1 / (m.Lambda * float64(t))
			label := 2*float64(y[i]) - 1 // ±1
			margin := label * (vec.Dot(m.w, x[i]) + m.b)
			vec.Scale(m.w, 1-eta*m.Lambda)
			if margin < 1 {
				vec.AXPY(m.w, eta*label, x[i])
				m.b += eta * label
			}
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (m *LinearSVM) PredictProba(x []float64) float64 {
	return sigmoid(2 * (vec.Dot(m.w, x) + m.b))
}

// Coefficients implements Classifier.
func (m *LinearSVM) Coefficients() []float64 { return vec.Clone(m.w) }
