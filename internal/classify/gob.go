package classify

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob support: every classifier in the pool can be serialized so a fitted
// WYM system survives process restarts (core.System.Save/Load). Each type
// round-trips its unexported state through an exported snapshot struct;
// trees are flattened into index-linked arrays.

func init() {
	gob.Register(&LogisticRegression{})
	gob.Register(&LDA{})
	gob.Register(&KNN{})
	gob.Register(&DecisionTree{})
	gob.Register(&GaussianNB{})
	gob.Register(&LinearSVM{})
	gob.Register(&AdaBoost{})
	gob.Register(&GBM{})
	gob.Register(&RandomForest{})
	gob.Register(&ExtraTrees{})
	gob.Register(&Standardized{})
}

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// flatTree is a treeNode forest flattened into arrays; Left/Right hold
// child indices (-1 for leaves).
type flatTree struct {
	Feature     []int
	Threshold   []float64
	Left, Right []int
	Value       []float64
	Samples     []int
}

func flattenTree(root *treeNode) flatTree {
	var ft flatTree
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(ft.Feature)
		ft.Feature = append(ft.Feature, n.feature)
		ft.Threshold = append(ft.Threshold, n.threshold)
		ft.Value = append(ft.Value, n.value)
		ft.Samples = append(ft.Samples, n.samples)
		ft.Left = append(ft.Left, -1)
		ft.Right = append(ft.Right, -1)
		if !n.isLeaf() {
			ft.Left[idx] = walk(n.left)
			ft.Right[idx] = walk(n.right)
		}
		return idx
	}
	if root != nil {
		walk(root)
	}
	return ft
}

func (ft flatTree) restore() *treeNode {
	if len(ft.Feature) == 0 {
		return nil
	}
	var build func(idx int) *treeNode
	build = func(idx int) *treeNode {
		n := &treeNode{
			feature:   ft.Feature[idx],
			threshold: ft.Threshold[idx],
			value:     ft.Value[idx],
			samples:   ft.Samples[idx],
		}
		if ft.Left[idx] >= 0 {
			n.left = build(ft.Left[idx])
			n.right = build(ft.Right[idx])
		}
		return n
	}
	return build(0)
}

// --- LogisticRegression ---

type lrSnapshot struct {
	Epochs int
	LR, L2 float64
	W      []float64
	B      float64
}

// GobEncode implements gob.GobEncoder.
func (m *LogisticRegression) GobEncode() ([]byte, error) {
	return encode(lrSnapshot{m.Epochs, m.LR, m.L2, m.w, m.b})
}

// GobDecode implements gob.GobDecoder.
func (m *LogisticRegression) GobDecode(data []byte) error {
	var s lrSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.Epochs, m.LR, m.L2, m.w, m.b = s.Epochs, s.LR, s.L2, s.W, s.B
	return nil
}

// --- LDA ---

type ldaSnapshot struct {
	Ridge     float64
	W         []float64
	Threshold float64
}

// GobEncode implements gob.GobEncoder.
func (m *LDA) GobEncode() ([]byte, error) {
	return encode(ldaSnapshot{m.Ridge, m.w, m.threshold})
}

// GobDecode implements gob.GobDecoder.
func (m *LDA) GobDecode(data []byte) error {
	var s ldaSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.Ridge, m.w, m.threshold = s.Ridge, s.W, s.Threshold
	return nil
}

// --- KNN ---

type knnSnapshot struct {
	K    int
	X    [][]float64
	Y    []int
	Coef []float64
}

// GobEncode implements gob.GobEncoder.
func (m *KNN) GobEncode() ([]byte, error) {
	return encode(knnSnapshot{m.K, m.x, m.y, m.coef})
}

// GobDecode implements gob.GobDecoder.
func (m *KNN) GobDecode(data []byte) error {
	var s knnSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.K, m.x, m.y, m.coef = s.K, s.X, s.Y, s.Coef
	return nil
}

// --- DecisionTree ---

type dtSnapshot struct {
	MaxDepth, MinLeaf int
	Seed              int64
	Tree              flatTree
	Coef              []float64
}

// GobEncode implements gob.GobEncoder.
func (m *DecisionTree) GobEncode() ([]byte, error) {
	return encode(dtSnapshot{m.MaxDepth, m.MinLeaf, m.seed, flattenTree(m.root), m.coef})
}

// GobDecode implements gob.GobDecoder.
func (m *DecisionTree) GobDecode(data []byte) error {
	var s dtSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.MaxDepth, m.MinLeaf, m.seed, m.root, m.coef =
		s.MaxDepth, s.MinLeaf, s.Seed, s.Tree.restore(), s.Coef
	return nil
}

// --- GaussianNB ---

type nbSnapshot struct {
	VarSmoothing   float64
	Mean, Variance [2][]float64
	LogPrior       [2]float64
	Fitted         bool
	SingleClass    int
}

// GobEncode implements gob.GobEncoder.
func (m *GaussianNB) GobEncode() ([]byte, error) {
	return encode(nbSnapshot{m.VarSmoothing, m.mean, m.variance, m.logPrior, m.fitted, m.singleClass})
}

// GobDecode implements gob.GobDecoder.
func (m *GaussianNB) GobDecode(data []byte) error {
	var s nbSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.VarSmoothing, m.mean, m.variance, m.logPrior, m.fitted, m.singleClass =
		s.VarSmoothing, s.Mean, s.Variance, s.LogPrior, s.Fitted, s.SingleClass
	return nil
}

// --- LinearSVM ---

type svmSnapshot struct {
	Lambda float64
	Epochs int
	Seed   int64
	W      []float64
	B      float64
}

// GobEncode implements gob.GobEncoder.
func (m *LinearSVM) GobEncode() ([]byte, error) {
	return encode(svmSnapshot{m.Lambda, m.Epochs, m.seed, m.w, m.b})
}

// GobDecode implements gob.GobDecoder.
func (m *LinearSVM) GobDecode(data []byte) error {
	var s svmSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.Lambda, m.Epochs, m.seed, m.w, m.b = s.Lambda, s.Epochs, s.Seed, s.W, s.B
	return nil
}

// --- AdaBoost ---

type stumpSnapshot struct {
	Feature   int
	Threshold float64
	Polarity  float64
	Alpha     float64
}

type abSnapshot struct {
	NStumps int
	Seed    int64
	Stumps  []stumpSnapshot
	Coef    []float64
}

// GobEncode implements gob.GobEncoder.
func (m *AdaBoost) GobEncode() ([]byte, error) {
	s := abSnapshot{NStumps: m.NStumps, Seed: m.seed, Coef: m.coef}
	for _, st := range m.stumps {
		s.Stumps = append(s.Stumps, stumpSnapshot{st.feature, st.threshold, st.polarity, st.alpha})
	}
	return encode(s)
}

// GobDecode implements gob.GobDecoder.
func (m *AdaBoost) GobDecode(data []byte) error {
	var s abSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.NStumps, m.seed, m.coef = s.NStumps, s.Seed, s.Coef
	m.stumps = m.stumps[:0]
	for _, st := range s.Stumps {
		m.stumps = append(m.stumps, stump{st.Feature, st.Threshold, st.Polarity, st.Alpha})
	}
	return nil
}

// --- GBM ---

type gbmSnapshot struct {
	NTrees, MaxDepth int
	LearnRate        float64
	Seed             int64
	Base             float64
	Trees            []flatTree
	Coef             []float64
}

// GobEncode implements gob.GobEncoder.
func (m *GBM) GobEncode() ([]byte, error) {
	s := gbmSnapshot{
		NTrees: m.NTrees, MaxDepth: m.MaxDepth, LearnRate: m.LearnRate,
		Seed: m.seed, Base: m.base, Coef: m.coef,
	}
	for _, t := range m.trees {
		s.Trees = append(s.Trees, flattenTree(t))
	}
	return encode(s)
}

// GobDecode implements gob.GobDecoder.
func (m *GBM) GobDecode(data []byte) error {
	var s gbmSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.NTrees, m.MaxDepth, m.LearnRate, m.seed, m.base, m.coef =
		s.NTrees, s.MaxDepth, s.LearnRate, s.Seed, s.Base, s.Coef
	m.trees = m.trees[:0]
	for _, ft := range s.Trees {
		m.trees = append(m.trees, ft.restore())
	}
	return nil
}

// --- forest (RandomForest / ExtraTrees) ---

type forestSnapshot struct {
	NTrees, MaxDepth, MinLeaf int
	Bootstrap, RandomSplit    bool
	Seed                      int64
	Trees                     []flatTree
	Coef                      []float64
}

func (m *forest) snapshot() forestSnapshot {
	s := forestSnapshot{
		NTrees: m.nTrees, MaxDepth: m.maxDepth, MinLeaf: m.minLeaf,
		Bootstrap: m.bootstrap, RandomSplit: m.randomSplit,
		Seed: m.seed, Coef: m.coef,
	}
	for _, t := range m.trees {
		s.Trees = append(s.Trees, flattenTree(t))
	}
	return s
}

func (m *forest) restore(s forestSnapshot) {
	m.nTrees, m.maxDepth, m.minLeaf = s.NTrees, s.MaxDepth, s.MinLeaf
	m.bootstrap, m.randomSplit = s.Bootstrap, s.RandomSplit
	m.seed, m.coef = s.Seed, s.Coef
	m.trees = m.trees[:0]
	for _, ft := range s.Trees {
		m.trees = append(m.trees, ft.restore())
	}
}

// GobEncode implements gob.GobEncoder.
func (m *RandomForest) GobEncode() ([]byte, error) { return encode(m.snapshot()) }

// GobDecode implements gob.GobDecoder.
func (m *RandomForest) GobDecode(data []byte) error {
	var s forestSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.restore(s)
	return nil
}

// GobEncode implements gob.GobEncoder.
func (m *ExtraTrees) GobEncode() ([]byte, error) { return encode(m.snapshot()) }

// GobDecode implements gob.GobDecoder.
func (m *ExtraTrees) GobDecode(data []byte) error {
	var s forestSnapshot
	if err := decode(data, &s); err != nil {
		return err
	}
	m.restore(s)
	return nil
}

// --- Standardized ---

type standardizedSnapshot struct {
	Inner      Classifier
	Mean, Std  []float64
	Fitted     bool
	ConstantIx []int
}

// GobEncode implements gob.GobEncoder.
func (s *Standardized) GobEncode() ([]byte, error) {
	snap := standardizedSnapshot{Inner: s.Inner, Mean: s.mean, Std: s.std, Fitted: s.fitted}
	for ix := range s.constantIx {
		snap.ConstantIx = append(snap.ConstantIx, ix)
	}
	return encode(&snap)
}

// GobDecode implements gob.GobDecoder.
func (s *Standardized) GobDecode(data []byte) error {
	var snap standardizedSnapshot
	if err := decode(data, &snap); err != nil {
		return fmt.Errorf("classify: decoding Standardized: %w", err)
	}
	s.Inner, s.mean, s.std, s.fitted = snap.Inner, snap.Mean, snap.Std, snap.Fitted
	s.constantIx = map[int]bool{}
	for _, ix := range snap.ConstantIx {
		s.constantIx[ix] = true
	}
	return nil
}
