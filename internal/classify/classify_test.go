package classify

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// linearlySeparable generates a 2-D dataset where feature 0 pushes toward
// class 1 and feature 1 pushes toward class 0, with a little noise.
func linearlySeparable(n int, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		label := rng.Intn(2)
		mu0, mu1 := -1.0, 1.0
		if label == 0 {
			mu0, mu1 = 1.0, -1.0
		}
		x = append(x, []float64{
			mu1 + rng.NormFloat64()*0.5,
			mu0 + rng.NormFloat64()*0.5,
		})
		y = append(y, label)
	}
	return x, y
}

// xorData is the classic non-linear dataset that linear models cannot fit
// but trees and ensembles can.
func xorData(n int, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := float64(rng.Intn(2))
		b := float64(rng.Intn(2))
		x = append(x, []float64{a + rng.NormFloat64()*0.1, b + rng.NormFloat64()*0.1})
		label := 0
		if (a > 0.5) != (b > 0.5) {
			label = 1
		}
		y = append(y, label)
	}
	return x, y
}

func accuracy(c Classifier, x [][]float64, y []int) float64 {
	var correct int
	for i := range x {
		if Predict(c, x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestAllClassifiersLearnLinearData(t *testing.T) {
	xTrain, yTrain := linearlySeparable(400, 1)
	xTest, yTest := linearlySeparable(200, 2)
	for _, c := range NewPool(7) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := c.Fit(xTrain, yTrain); err != nil {
				t.Fatal(err)
			}
			if acc := accuracy(c, xTest, yTest); acc < 0.9 {
				t.Fatalf("accuracy = %v, want >= 0.9", acc)
			}
		})
	}
}

func TestTreeModelsLearnXOR(t *testing.T) {
	xTrain, yTrain := xorData(400, 3)
	xTest, yTest := xorData(200, 4)
	for _, c := range []Classifier{
		NewDecisionTree(1), NewRandomForest(1), NewExtraTrees(1), NewGBM(1), NewKNN(5),
	} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := c.Fit(xTrain, yTrain); err != nil {
				t.Fatal(err)
			}
			if acc := accuracy(c, xTest, yTest); acc < 0.9 {
				t.Fatalf("XOR accuracy = %v, want >= 0.9", acc)
			}
		})
	}
}

func TestLinearCoefficientSigns(t *testing.T) {
	x, y := linearlySeparable(500, 5)
	for _, c := range []Classifier{
		NewLogisticRegression(), NewLDA(), NewGaussianNB(), NewLinearSVM(1),
	} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := c.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			coef := c.Coefficients()
			if len(coef) != 2 {
				t.Fatalf("coef len = %d", len(coef))
			}
			if coef[0] <= 0 || coef[1] >= 0 {
				t.Fatalf("coefficient signs wrong: %v (feature 0 is positive evidence)", coef)
			}
		})
	}
}

func TestEnsembleCoefficientSigns(t *testing.T) {
	x, y := linearlySeparable(500, 6)
	for _, c := range []Classifier{
		NewDecisionTree(1), NewRandomForest(1), NewExtraTrees(1), NewGBM(1), NewAdaBoost(1), NewKNN(5),
	} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := c.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			coef := c.Coefficients()
			if coef[0] <= 0 || coef[1] >= 0 {
				t.Fatalf("signed importance wrong: %v", coef)
			}
		})
	}
}

func TestPredictProbaBounds(t *testing.T) {
	x, y := linearlySeparable(200, 8)
	probe, _ := linearlySeparable(50, 9)
	for _, c := range NewPool(3) {
		if err := c.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for _, row := range probe {
			p := c.PredictProba(row)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("%s: proba out of range: %v", c.Name(), p)
			}
		}
	}
}

func TestDeterministicFit(t *testing.T) {
	x, y := linearlySeparable(200, 10)
	probe := []float64{0.3, -0.4}
	for _, mk := range []func() Classifier{
		func() Classifier { return NewLogisticRegression() },
		func() Classifier { return NewLDA() },
		func() Classifier { return NewKNN(5) },
		func() Classifier { return NewDecisionTree(42) },
		func() Classifier { return NewGaussianNB() },
		func() Classifier { return NewLinearSVM(42) },
		func() Classifier { return NewAdaBoost(42) },
		func() Classifier { return NewGBM(42) },
		func() Classifier { return NewRandomForest(42) },
		func() Classifier { return NewExtraTrees(42) },
	} {
		a, b := mk(), mk()
		if err := a.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if a.PredictProba(probe) != b.PredictProba(probe) {
			t.Fatalf("%s: training not deterministic", a.Name())
		}
		if !reflect.DeepEqual(a.Coefficients(), b.Coefficients()) {
			t.Fatalf("%s: coefficients not deterministic", a.Name())
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	for _, c := range NewPool(1) {
		if err := c.Fit(nil, nil); err == nil {
			t.Fatalf("%s: expected error on empty set", c.Name())
		}
	}
	lr := NewLogisticRegression()
	if err := lr.Fit([][]float64{{1}}, []int{1, 0}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := lr.Fit([][]float64{{1}, {1, 2}}, []int{1, 0}); err == nil {
		t.Fatal("expected ragged matrix error")
	}
	if err := lr.Fit([][]float64{{1}}, []int{7}); err == nil {
		t.Fatal("expected invalid label error")
	}
}

func TestSingleClassDegenerateFits(t *testing.T) {
	// All-positive training data must not crash any model, and the model
	// should predict the constant class.
	x := [][]float64{{1, 2}, {2, 1}, {1.5, 1.5}, {2, 2}}
	y := []int{1, 1, 1, 1}
	for _, c := range NewPool(1) {
		if err := c.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got := Predict(c, []float64{1.5, 1.5}); got != 1 {
			t.Fatalf("%s: single-class predict = %d, want 1", c.Name(), got)
		}
	}
}

func TestStandardizedConstantFeature(t *testing.T) {
	// A constant feature must not produce NaNs and must get a zero
	// coefficient.
	x := [][]float64{{5, -1}, {5, 1}, {5, -1.2}, {5, 0.9}, {5, -0.8}, {5, 1.1}}
	y := []int{0, 1, 0, 1, 0, 1}
	c := NewStandardized(NewLogisticRegression())
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	coef := c.Coefficients()
	if coef[0] != 0 {
		t.Fatalf("constant feature coefficient = %v, want 0", coef[0])
	}
	if p := c.PredictProba([]float64{5, 1}); math.IsNaN(p) {
		t.Fatal("NaN probability with constant feature")
	}
}

func TestStandardizedPanicsBeforeFit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStandardized(NewLogisticRegression()).PredictProba([]float64{1})
}

func TestSelectBest(t *testing.T) {
	xTrain, yTrain := xorData(300, 11)
	xValid, yValid := xorData(150, 12)
	best, report, err := SelectBest(NewPool(5), xTrain, yTrain, xValid, yValid)
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 10 {
		t.Fatalf("report has %d rows", len(report))
	}
	// XOR: the winner must be a non-linear model with high F1.
	if report[0].F1 < 0.85 {
		t.Fatalf("best F1 = %v", report[0].F1)
	}
	if best.Name() == "LR" || best.Name() == "LDA" || best.Name() == "SVM" {
		t.Fatalf("a linear model (%s) won XOR", best.Name())
	}
	// Report is sorted by descending F1.
	for i := 1; i < len(report); i++ {
		if report[i].F1 > report[i-1].F1 {
			t.Fatalf("report not sorted: %v", report)
		}
	}
}

func TestSelectBestAllFail(t *testing.T) {
	if _, _, err := SelectBest(NewPool(1), nil, nil, nil, nil); err == nil {
		t.Fatal("expected error when every fit fails")
	}
}

func TestF1Score(t *testing.T) {
	p, r, f1 := f1Score([]int{1, 1, 0, 0}, []int{1, 0, 1, 0})
	if math.Abs(p-0.5) > 1e-12 || math.Abs(r-0.5) > 1e-12 || math.Abs(f1-0.5) > 1e-12 {
		t.Fatalf("p/r/f1 = %v/%v/%v", p, r, f1)
	}
	// No predicted positives.
	p, r, f1 = f1Score([]int{0, 0}, []int{1, 0})
	if p != 0 || r != 0 || f1 != 0 {
		t.Fatalf("degenerate f1 = %v/%v/%v", p, r, f1)
	}
}

func TestPredictAll(t *testing.T) {
	x, y := linearlySeparable(100, 13)
	c := NewLogisticRegression()
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	preds := PredictAll(c, x)
	if len(preds) != len(x) {
		t.Fatalf("len = %d", len(preds))
	}
}

func TestKNNSmallK(t *testing.T) {
	k := NewKNN(0) // clamped to 1
	if k.K != 1 {
		t.Fatalf("K = %d", k.K)
	}
	x := [][]float64{{0}, {1}}
	y := []int{0, 1}
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if Predict(k, []float64{0.9}) != 1 || Predict(k, []float64{0.1}) != 0 {
		t.Fatal("1-NN predictions wrong")
	}
	// K larger than the training set must clamp, not panic.
	big := NewKNN(50)
	if err := big.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := big.PredictProba([]float64{0.5}); p != 0.5 {
		t.Fatalf("clamped-K proba = %v, want 0.5", p)
	}
}

func TestGBMImprovesOverBaseline(t *testing.T) {
	x, y := xorData(300, 14)
	m := NewGBM(1)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Probabilities should spread away from the base rate.
	var spread float64
	for i := range x {
		spread += math.Abs(m.PredictProba(x[i]) - 0.5)
	}
	if spread/float64(len(x)) < 0.2 {
		t.Fatalf("GBM barely moved off the prior: %v", spread/float64(len(x)))
	}
}

func TestAdaBoostStopsOnPerfectStump(t *testing.T) {
	// Perfectly separable on one feature: training must terminate quickly
	// and classify everything correctly.
	x := [][]float64{{0}, {0.1}, {0.9}, {1}}
	y := []int{0, 0, 1, 1}
	m := NewAdaBoost(1)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if len(m.stumps) > 2 {
		t.Fatalf("perfect stump should stop boosting, got %d stumps", len(m.stumps))
	}
	if accuracy(m, x, y) != 1 {
		t.Fatal("AdaBoost failed a trivially separable problem")
	}
}

func BenchmarkFitPool(b *testing.B) {
	x, y := linearlySeparable(300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range NewPool(int64(i)) {
			if err := c.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	}
}
