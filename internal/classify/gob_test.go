package classify

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// roundTrip gob-encodes a fitted classifier through the Classifier
// interface and returns the decoded copy.
func roundTrip(t *testing.T, c Classifier) Classifier {
	t.Helper()
	var buf bytes.Buffer
	holder := struct{ C Classifier }{C: c}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		t.Fatalf("encode %s: %v", c.Name(), err)
	}
	var out struct{ C Classifier }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", c.Name(), err)
	}
	return out.C
}

func TestGobRoundTripAllClassifiers(t *testing.T) {
	xTrain, yTrain := linearlySeparable(200, 31)
	probes, _ := linearlySeparable(40, 32)
	for _, c := range NewPool(9) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := c.Fit(xTrain, yTrain); err != nil {
				t.Fatal(err)
			}
			restored := roundTrip(t, c)
			if restored.Name() != c.Name() {
				t.Fatalf("name = %q, want %q", restored.Name(), c.Name())
			}
			for _, x := range probes {
				if got, want := restored.PredictProba(x), c.PredictProba(x); got != want {
					t.Fatalf("proba diverged: %v vs %v", got, want)
				}
			}
			a, b := restored.Coefficients(), c.Coefficients()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("coefficient %d diverged: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestGobRoundTripNonLinearModels(t *testing.T) {
	// XOR exercises deep trees and multi-stump boosters, covering the tree
	// flattening with real structure.
	xTrain, yTrain := xorData(300, 33)
	probes, _ := xorData(50, 34)
	for _, c := range []Classifier{
		NewDecisionTree(2), NewRandomForest(2), NewExtraTrees(2), NewGBM(2), NewAdaBoost(2),
	} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			if err := c.Fit(xTrain, yTrain); err != nil {
				t.Fatal(err)
			}
			restored := roundTrip(t, c)
			for _, x := range probes {
				if restored.PredictProba(x) != c.PredictProba(x) {
					t.Fatal("tree structure lost in round trip")
				}
			}
		})
	}
}

func TestFlattenTreeEmpty(t *testing.T) {
	if ft := flattenTree(nil); len(ft.Feature) != 0 {
		t.Fatalf("nil tree flattened to %+v", ft)
	}
	if ft := (flatTree{}); ft.restore() != nil {
		t.Fatal("empty flat tree should restore to nil")
	}
}

func TestFlattenTreeSingleLeaf(t *testing.T) {
	leaf := &treeNode{value: 0.7, samples: 3}
	restored := flattenTree(leaf).restore()
	if restored == nil || !restored.isLeaf() || restored.value != 0.7 || restored.samples != 3 {
		t.Fatalf("leaf round trip = %+v", restored)
	}
}
