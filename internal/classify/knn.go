package classify

import (
	"sort"

	"wym/internal/vec"
)

// KNN is a k-nearest-neighbours classifier under Euclidean distance. Its
// probability is the fraction of matching neighbours. KNN has no model
// coefficients; Coefficients returns each feature's point-biserial
// correlation with the label as the interpretability proxy, with the
// correlation magnitude serving as importance.
type KNN struct {
	K int

	x    [][]float64
	y    []int
	coef []float64
}

// NewKNN returns a classifier with the given neighbourhood size (the
// paper's pool uses the scikit-learn default of 5).
func NewKNN(k int) *KNN {
	if k < 1 {
		k = 1
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (m *KNN) Name() string { return "KNN" }

// Fit implements Classifier. KNN is a lazy learner: Fit stores the
// training set and precomputes the coefficient proxy.
func (m *KNN) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	m.x = x
	m.y = y
	d := len(x[0])
	labels := make([]float64, len(y))
	for i, v := range y {
		labels[i] = float64(v)
	}
	m.coef = make([]float64, d)
	col := make([]float64, len(x))
	for j := 0; j < d; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		m.coef[j] = vec.Pearson(col, labels)
	}
	return nil
}

// PredictProba implements Classifier.
func (m *KNN) PredictProba(x []float64) float64 {
	k := m.K
	if k > len(m.x) {
		k = len(m.x)
	}
	type neighbour struct {
		dist2 float64
		label int
	}
	ns := make([]neighbour, len(m.x))
	for i, row := range m.x {
		var d2 float64
		for j, v := range row {
			diff := v - x[j]
			d2 += diff * diff
		}
		ns[i] = neighbour{d2, m.y[i]}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].dist2 < ns[b].dist2 })
	var pos int
	for _, n := range ns[:k] {
		pos += n.label
	}
	return float64(pos) / float64(k)
}

// Coefficients implements Classifier.
func (m *KNN) Coefficients() []float64 { return vec.Clone(m.coef) }
