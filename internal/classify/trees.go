package classify

import (
	"math"
	"math/rand"
	"sort"

	"wym/internal/vec"
)

// DecisionTree is a single CART tree (variance-reduction splits, which for
// binary targets coincide with Gini).
type DecisionTree struct {
	MaxDepth int
	MinLeaf  int

	seed int64
	root *treeNode
	coef []float64
}

// NewDecisionTree returns a tree with the repo defaults (depth 8, leaf 2).
func NewDecisionTree(seed int64) *DecisionTree {
	return &DecisionTree{MaxDepth: 8, MinLeaf: 2, seed: seed}
}

// Name implements Classifier.
func (m *DecisionTree) Name() string { return "DT" }

// Fit implements Classifier.
func (m *DecisionTree) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	importance := make([]float64, len(x[0]))
	m.root = buildTree(x, float64Labels(y), allFeatures(len(x)), treeOptions{
		maxDepth: m.MaxDepth,
		minLeaf:  m.MinLeaf,
		rng:      rand.New(rand.NewSource(m.seed)),
	}, 0, importance)
	normalizeImportance(importance)
	m.coef = signedImportance(importance, x, y)
	return nil
}

// PredictProba implements Classifier.
func (m *DecisionTree) PredictProba(x []float64) float64 { return m.root.predict(x) }

// Coefficients implements Classifier.
func (m *DecisionTree) Coefficients() []float64 { return vec.Clone(m.coef) }

// forest is the shared implementation of RandomForest and ExtraTrees.
type forest struct {
	nTrees      int
	maxDepth    int
	minLeaf     int
	bootstrap   bool
	randomSplit bool
	seed        int64

	trees []*treeNode
	coef  []float64
}

func (m *forest) fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	d := len(x[0])
	maxFeatures := int(math.Sqrt(float64(d)))
	if maxFeatures < 1 {
		maxFeatures = 1
	}
	target := float64Labels(y)
	rng := rand.New(rand.NewSource(m.seed))
	importance := make([]float64, d)
	m.trees = make([]*treeNode, m.nTrees)
	for t := range m.trees {
		idx := make([]int, len(x))
		if m.bootstrap {
			for i := range idx {
				idx[i] = rng.Intn(len(x))
			}
		} else {
			copy(idx, allFeatures(len(x)))
		}
		m.trees[t] = buildTree(x, target, idx, treeOptions{
			maxDepth:    m.maxDepth,
			minLeaf:     m.minLeaf,
			maxFeatures: maxFeatures,
			randomSplit: m.randomSplit,
			rng:         rng,
		}, 0, importance)
	}
	normalizeImportance(importance)
	m.coef = signedImportance(importance, x, y)
	return nil
}

func (m *forest) predictProba(x []float64) float64 {
	var s float64
	for _, t := range m.trees {
		s += t.predict(x)
	}
	return s / float64(len(m.trees))
}

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling.
type RandomForest struct{ forest }

// NewRandomForest returns a forest with the repo defaults (40 trees,
// depth 8).
func NewRandomForest(seed int64) *RandomForest {
	return &RandomForest{forest{nTrees: 40, maxDepth: 8, minLeaf: 2, bootstrap: true, seed: seed}}
}

// Name implements Classifier.
func (m *RandomForest) Name() string { return "RF" }

// Fit implements Classifier.
func (m *RandomForest) Fit(x [][]float64, y []int) error { return m.fit(x, y) }

// PredictProba implements Classifier.
func (m *RandomForest) PredictProba(x []float64) float64 { return m.predictProba(x) }

// Coefficients implements Classifier.
func (m *RandomForest) Coefficients() []float64 { return vec.Clone(m.coef) }

// ExtraTrees is an extremely randomized forest: no bootstrap, one uniform
// random threshold per candidate feature.
type ExtraTrees struct{ forest }

// NewExtraTrees returns an extra-trees ensemble with the repo defaults.
func NewExtraTrees(seed int64) *ExtraTrees {
	return &ExtraTrees{forest{nTrees: 40, maxDepth: 8, minLeaf: 2, randomSplit: true, seed: seed}}
}

// Name implements Classifier.
func (m *ExtraTrees) Name() string { return "ET" }

// Fit implements Classifier.
func (m *ExtraTrees) Fit(x [][]float64, y []int) error { return m.fit(x, y) }

// PredictProba implements Classifier.
func (m *ExtraTrees) PredictProba(x []float64) float64 { return m.predictProba(x) }

// Coefficients implements Classifier.
func (m *ExtraTrees) Coefficients() []float64 { return vec.Clone(m.coef) }

// GBM is gradient boosting: shallow regression trees fitted to the
// gradient of the logistic loss.
type GBM struct {
	NTrees    int
	MaxDepth  int
	LearnRate float64

	seed  int64
	base  float64
	trees []*treeNode
	coef  []float64
}

// NewGBM returns a boosted ensemble with the repo defaults (60 trees,
// depth 3, shrinkage 0.1).
func NewGBM(seed int64) *GBM {
	return &GBM{NTrees: 60, MaxDepth: 3, LearnRate: 0.1, seed: seed}
}

// Name implements Classifier.
func (m *GBM) Name() string { return "GBM" }

// Fit implements Classifier.
func (m *GBM) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	n := len(x)
	d := len(x[0])
	// Initial raw score: log-odds of the base rate, clamped for the
	// single-class case.
	var pos int
	for _, v := range y {
		pos += v
	}
	p0 := (float64(pos) + 0.5) / (float64(n) + 1)
	m.base = math.Log(p0 / (1 - p0))

	raw := make([]float64, n)
	for i := range raw {
		raw[i] = m.base
	}
	residual := make([]float64, n)
	importance := make([]float64, d)
	rng := rand.New(rand.NewSource(m.seed))
	idx := allFeatures(n)
	m.trees = make([]*treeNode, 0, m.NTrees)
	for t := 0; t < m.NTrees; t++ {
		for i := range residual {
			residual[i] = float64(y[i]) - sigmoid(raw[i])
		}
		tree := buildTree(x, residual, idx, treeOptions{
			maxDepth: m.MaxDepth,
			minLeaf:  2,
			rng:      rng,
		}, 0, importance)
		m.trees = append(m.trees, tree)
		for i := range raw {
			raw[i] += m.LearnRate * tree.predict(x[i])
		}
	}
	normalizeImportance(importance)
	m.coef = signedImportance(importance, x, y)
	return nil
}

// PredictProba implements Classifier.
func (m *GBM) PredictProba(x []float64) float64 {
	raw := m.base
	for _, t := range m.trees {
		raw += m.LearnRate * t.predict(x)
	}
	return sigmoid(raw)
}

// Coefficients implements Classifier.
func (m *GBM) Coefficients() []float64 { return vec.Clone(m.coef) }

// AdaBoost is discrete AdaBoost over depth-1 decision stumps.
type AdaBoost struct {
	NStumps int

	seed   int64
	stumps []stump
	coef   []float64
}

type stump struct {
	feature   int
	threshold float64
	// polarity +1 predicts class 1 above the threshold, -1 below.
	polarity float64
	alpha    float64
}

func (s stump) predict(x []float64) float64 {
	if (x[s.feature]-s.threshold)*s.polarity > 0 {
		return 1
	}
	return -1
}

// NewAdaBoost returns an ensemble with the repo default of 50 stumps.
func NewAdaBoost(seed int64) *AdaBoost { return &AdaBoost{NStumps: 50, seed: seed} }

// Name implements Classifier.
func (m *AdaBoost) Name() string { return "AB" }

// Fit implements Classifier.
func (m *AdaBoost) Fit(x [][]float64, y []int) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	n := len(x)
	d := len(x[0])
	labels := make([]float64, n) // ±1
	for i, v := range y {
		labels[i] = 2*float64(v) - 1
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(n)
	}
	m.stumps = m.stumps[:0]
	importance := make([]float64, d)
	for t := 0; t < m.NStumps; t++ {
		best, bestErr := bestStump(x, labels, weights)
		if bestErr >= 0.5 {
			break // no stump better than chance remains
		}
		eps := math.Max(bestErr, 1e-10)
		best.alpha = 0.5 * math.Log((1-eps)/eps)
		m.stumps = append(m.stumps, best)
		importance[best.feature] += best.alpha
		var sum float64
		for i := range weights {
			weights[i] *= math.Exp(-best.alpha * labels[i] * best.predict(x[i]))
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}
		if bestErr == 0 {
			break // perfect stump: further rounds add nothing
		}
	}
	normalizeImportance(importance)
	m.coef = signedImportance(importance, x, y)
	return nil
}

// bestStump searches every feature and every midpoint threshold for the
// stump with the lowest weighted error.
func bestStump(x [][]float64, labels, weights []float64) (stump, float64) {
	n := len(x)
	d := len(x[0])
	best := stump{feature: 0, threshold: 0, polarity: 1}
	bestErr := math.Inf(1)
	for f := 0; f < d; f++ {
		// Candidate thresholds: midpoints of sorted unique values. For
		// speed, sort indices by the feature once per feature.
		order := allFeatures(n)
		sortByFeature(x, order, f)
		// Weighted sum of labels above the split updates incrementally.
		var sumAbovePos, sumAboveNeg float64 // weights of +1/-1 labels above threshold
		for i := range order {
			if labels[order[i]] > 0 {
				sumAbovePos += weights[order[i]]
			} else {
				sumAboveNeg += weights[order[i]]
			}
		}
		// err(polarity=+1) = weight of -1 above + weight of +1 below.
		var belowPos, belowNeg float64
		consider := func(threshold float64) {
			errPlus := sumAboveNeg + belowPos
			errMinus := sumAbovePos + belowNeg
			if errPlus < bestErr {
				bestErr = errPlus
				best = stump{feature: f, threshold: threshold, polarity: 1}
			}
			if errMinus < bestErr {
				bestErr = errMinus
				best = stump{feature: f, threshold: threshold, polarity: -1}
			}
		}
		consider(x[order[0]][f] - 1) // everything above
		for i := 0; i < n; i++ {
			idx := order[i]
			if labels[idx] > 0 {
				belowPos += weights[idx]
				sumAbovePos -= weights[idx]
			} else {
				belowNeg += weights[idx]
				sumAboveNeg -= weights[idx]
			}
			if i+1 < n && x[order[i+1]][f] == x[idx][f] {
				continue
			}
			var threshold float64
			if i+1 < n {
				threshold = (x[idx][f] + x[order[i+1]][f]) / 2
			} else {
				threshold = x[idx][f] + 1
			}
			consider(threshold)
		}
	}
	return best, bestErr
}

func sortByFeature(x [][]float64, order []int, f int) {
	sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
}

// PredictProba implements Classifier.
func (m *AdaBoost) PredictProba(x []float64) float64 {
	var margin float64
	for _, s := range m.stumps {
		margin += s.alpha * s.predict(x)
	}
	return sigmoid(2 * margin)
}

// Coefficients implements Classifier.
func (m *AdaBoost) Coefficients() []float64 { return vec.Clone(m.coef) }
