package classify

import (
	"math/rand"
	"sort"
)

// treeNode is a node of a binary regression tree. Classification trees are
// regression trees over 0/1 targets: the leaf mean is the class-1
// probability, and variance reduction on binary targets selects the same
// splits as Gini impurity.
type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64
	samples     int
}

func (n *treeNode) isLeaf() bool { return n.left == nil }

func (n *treeNode) predict(x []float64) float64 {
	for !n.isLeaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// treeOptions configures buildTree.
type treeOptions struct {
	maxDepth    int
	minLeaf     int
	maxFeatures int        // number of features tried per split; 0 = all
	randomSplit bool       // extra-trees: one uniform random threshold per feature
	rng         *rand.Rand // required when maxFeatures > 0 or randomSplit
}

// buildTree fits a tree on rows idx of (x, target), minimizing the squared
// error of leaf means. importance, when non-nil, accumulates each
// feature's total impurity decrease weighted by node size.
func buildTree(x [][]float64, target []float64, idx []int, opts treeOptions,
	depth int, importance []float64) *treeNode {
	node := &treeNode{samples: len(idx), value: meanAt(target, idx)}
	if depth >= opts.maxDepth || len(idx) < 2*opts.minLeaf {
		return node
	}
	varTotal := varianceAt(target, idx)
	if varTotal == 0 {
		return node
	}

	d := len(x[0])
	features := allFeatures(d)
	if opts.maxFeatures > 0 && opts.maxFeatures < d {
		opts.rng.Shuffle(d, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:opts.maxFeatures]
	}

	bestGain := 0.0
	bestFeature := -1
	var bestThreshold float64
	for _, f := range features {
		var gain, threshold float64
		var ok bool
		if opts.randomSplit {
			gain, threshold, ok = randomSplitGain(x, target, idx, f, opts, varTotal)
		} else {
			gain, threshold, ok = bestSplitGain(x, target, idx, f, opts, varTotal)
		}
		if ok && gain > bestGain {
			bestGain, bestFeature, bestThreshold = gain, f, threshold
		}
	}
	if bestFeature < 0 {
		return node
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < opts.minLeaf || len(rightIdx) < opts.minLeaf {
		return node
	}
	if importance != nil {
		importance[bestFeature] += bestGain * float64(len(idx))
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = buildTree(x, target, leftIdx, opts, depth+1, importance)
	node.right = buildTree(x, target, rightIdx, opts, depth+1, importance)
	return node
}

// bestSplitGain scans all midpoints of the sorted feature values and
// returns the best variance reduction, its threshold, and whether any
// valid split exists.
func bestSplitGain(x [][]float64, target []float64, idx []int, f int,
	opts treeOptions, varTotal float64) (gain, threshold float64, ok bool) {
	sorted := make([]int, len(idx))
	copy(sorted, idx)
	sort.Slice(sorted, func(a, b int) bool { return x[sorted[a]][f] < x[sorted[b]][f] })

	n := len(sorted)
	var sumLeft, sqLeft float64
	var sumTotal, sqTotal float64
	for _, i := range sorted {
		sumTotal += target[i]
		sqTotal += target[i] * target[i]
	}
	for k := 0; k < n-1; k++ {
		t := target[sorted[k]]
		sumLeft += t
		sqLeft += t * t
		vl, vr := x[sorted[k]][f], x[sorted[k+1]][f]
		if vl == vr {
			continue
		}
		nl, nr := float64(k+1), float64(n-k-1)
		if int(nl) < opts.minLeaf || int(nr) < opts.minLeaf {
			continue
		}
		varLeft := sqLeft/nl - (sumLeft/nl)*(sumLeft/nl)
		sumRight := sumTotal - sumLeft
		sqRight := sqTotal - sqLeft
		varRight := sqRight/nr - (sumRight/nr)*(sumRight/nr)
		g := varTotal - (nl*varLeft+nr*varRight)/float64(n)
		if g > gain {
			gain = g
			threshold = (vl + vr) / 2
			ok = true
		}
	}
	return gain, threshold, ok
}

// randomSplitGain draws one uniform threshold between the feature's min
// and max (the Extra-Trees rule) and evaluates its variance reduction.
func randomSplitGain(x [][]float64, target []float64, idx []int, f int,
	opts treeOptions, varTotal float64) (gain, threshold float64, ok bool) {
	lo, hi := x[idx[0]][f], x[idx[0]][f]
	for _, i := range idx {
		v := x[i][f]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return 0, 0, false
	}
	threshold = lo + opts.rng.Float64()*(hi-lo)
	var nl, nr float64
	var sumL, sqL, sumR, sqR float64
	for _, i := range idx {
		t := target[i]
		if x[i][f] <= threshold {
			nl++
			sumL += t
			sqL += t * t
		} else {
			nr++
			sumR += t
			sqR += t * t
		}
	}
	if int(nl) < opts.minLeaf || int(nr) < opts.minLeaf {
		return 0, 0, false
	}
	varL := sqL/nl - (sumL/nl)*(sumL/nl)
	varR := sqR/nr - (sumR/nr)*(sumR/nr)
	gain = varTotal - (nl*varL+nr*varR)/float64(len(idx))
	return gain, threshold, gain > 0
}

func meanAt(target []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += target[i]
	}
	return s / float64(len(idx))
}

func varianceAt(target []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	m := meanAt(target, idx)
	var v float64
	for _, i := range idx {
		d := target[i] - m
		v += d * d
	}
	return v / float64(len(idx))
}

func allFeatures(d int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = i
	}
	return out
}

func float64Labels(y []int) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = float64(v)
	}
	return out
}

func normalizeImportance(imp []float64) {
	var total float64
	for _, v := range imp {
		total += v
	}
	if total == 0 {
		return
	}
	for i := range imp {
		imp[i] /= total
	}
}
