package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock steps time manually so breaker-window tests never sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, OpenFor: time.Second, Now: clk.Now})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
		if b.State() != Closed {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("breaker did not open at the threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the window")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, OpenFor: time.Second, Now: clk.Now})
	b.Failure()
	if b.State() != Open {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	clk.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker allowed before the open window elapsed")
	}
	clk.Advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the window")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("breaker allowed a second concurrent half-open probe")
	}
	// Probe failure re-opens for a fresh window.
	b.Failure()
	if b.State() != Open {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Allow() {
		t.Fatal("breaker allowed right after a failed probe")
	}
	clk.Advance(1001 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, OpenFor: time.Second, Now: clk.Now})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("three consecutive failures did not trip the breaker")
	}
}

func TestBreakerResetAndStateHook(t *testing.T) {
	clk := newFakeClock()
	var transitions []BreakerState
	var mu sync.Mutex
	b := NewBreaker(BreakerConfig{
		Threshold: 1, OpenFor: time.Second, Now: clk.Now,
		OnState: func(s BreakerState) {
			mu.Lock()
			transitions = append(transitions, s)
			mu.Unlock()
		},
	})
	b.Failure() // -> open
	b.Reset()   // -> closed (health-probe re-admission)
	if b.State() != Closed || !b.Allow() {
		t.Fatal("Reset did not close the breaker")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []BreakerState{Open, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 5, OpenFor: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if j%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				b.State()
			}
		}(i)
	}
	wg.Wait()
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		Closed: "closed", HalfOpen: "half-open", Open: "open", BreakerState(9): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
