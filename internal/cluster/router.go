package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wym/internal/serve"
)

// RouterConfig tunes the traffic layer. Zero fields take the defaults
// noted.
type RouterConfig struct {
	TryTimeout time.Duration // per-attempt forward budget (default 10s)
	Retries    int           // full failover rounds after the first (default 2)
	Backoff    *Backoff      // retry delays (default NewBackoff(25ms, 1s, 0))
	MaxBody    int64         // inbound body cap in bytes (default 1<<20)
	MaxBatch   int           // max pairs per inbound batch (default 1024)
	Client     *http.Client  // forwarding client (default http.DefaultTransport, no client timeout — per-try ctx governs)
	Logger     *log.Logger
	Metrics    *Metrics
	Now        func() time.Time
}

// Router forwards predict traffic onto a Pool: consistent-hash replica
// selection with in-request failover, circuit-breaker gating, retries
// with full-jitter backoff on idempotent calls, Retry-After-honoring
// shed cooloffs, deadline propagation from the inbound context, and
// per-item degradation on /predict/batch.
//
// Predict and explain calls are read-only against an immutable model
// snapshot, so retrying them against another replica is always safe.
type Router struct {
	pool *Pool
	cfg  RouterConfig
}

// NewRouter builds a router over the pool.
func NewRouter(pool *Pool, cfg RouterConfig) *Router {
	if cfg.TryTimeout <= 0 {
		cfg.TryTimeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff == nil {
		cfg.Backoff = NewBackoff(25*time.Millisecond, time.Second, 0)
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Router{pool: pool, cfg: cfg}
}

// Pool exposes the replica pool (readyz reporting, tests).
func (rt *Router) Pool() *Pool { return rt.pool }

// Handler assembles the router mux. Routed endpoints mirror
// wym-server's so clients cannot tell a router from a replica; the
// model-scoped forms forward to /models/{name}/... on the replica.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, metricRoute string, h http.HandlerFunc) {
		var inner http.Handler = h
		inner = http.MaxBytesHandler(inner, rt.cfg.MaxBody)
		if hist := rt.cfg.Metrics.RoutedSeconds(metricRoute); hist != nil {
			next := inner
			inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				start := rt.cfg.Now()
				next.ServeHTTP(w, r)
				hist.Observe(rt.cfg.Now().Sub(start).Seconds())
			})
		}
		mux.Handle(pattern, inner)
	}
	route("POST /predict", "/predict", rt.handleSingle(""))
	route("POST /explain", "/explain", rt.handleSingle(""))
	route("POST /predict/batch", "/predict/batch", rt.handleBatch(false))
	route("POST /models/{name}/predict", "/models/{name}/predict", rt.handleSingle("predict"))
	route("POST /models/{name}/explain", "/models/{name}/explain", rt.handleSingle("explain"))
	route("POST /models/{name}/predict/batch", "/models/{name}/predict/batch", rt.handleBatch(true))
	mux.HandleFunc("GET /schema", rt.handleSchema)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	return mux
}

// replicaResponse is one completed forward: the replica's verdict,
// fully buffered so failover decisions never hold a connection open.
type replicaResponse struct {
	status int
	header http.Header
	body   []byte
}

// send forwards one attempt to one replica under the inbound deadline
// intersected with the per-try budget.
func (rt *Router) send(ctx context.Context, rep *Replica, method, path string, body []byte) (*replicaResponse, error) {
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.TryTimeout)
	defer cancel()
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(tctx, method, rep.Endpoint+path, rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	return &replicaResponse{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// forward routes one idempotent request to the best available replica
// for key, walking the failover order and retrying whole rounds with
// backoff. A replica's verdict on the request itself (2xx–4xx except
// 429) ends the walk; transport errors, 5xx, and sheds move on.
func (rt *Router) forward(ctx context.Context, method, path string, body []byte, key string) (*replicaResponse, error) {
	var lastErr error
	attempts := 0
	for round := 0; round <= rt.cfg.Retries; round++ {
		if round > 0 {
			delay := rt.cfg.Backoff.Delay(round - 1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
		}
		cands := rt.pool.Candidates(key)
		if len(cands) == 0 {
			lastErr = ErrNoReplicas
			continue
		}
		for _, rep := range cands {
			now := rt.cfg.Now()
			if rep.CoolingOff(now) {
				continue
			}
			if !rep.breaker.Allow() {
				rt.cfg.Metrics.Forwards(rep.Endpoint, "rejected").Inc()
				continue
			}
			if attempts > 0 {
				rt.cfg.Metrics.Retries(rep.Endpoint).Inc()
			}
			attempts++
			resp, err := rt.send(ctx, rep, method, path, body)
			if err != nil {
				if ctx.Err() != nil {
					// The client's deadline, not the replica's fault:
					// don't punish the breaker for an inbound cancel.
					return nil, ctx.Err()
				}
				rep.breaker.Failure()
				rt.cfg.Metrics.Forwards(rep.Endpoint, "error").Inc()
				lastErr = fmt.Errorf("%s: %w", rep.Endpoint, err)
				continue
			}
			switch {
			case resp.status == http.StatusTooManyRequests:
				// Shedding means alive-but-saturated: honor its
				// Retry-After instead of counting a breaker failure.
				rep.breaker.Success()
				d := retryAfterDuration(resp.header)
				if d <= 0 {
					d = time.Second
				}
				rep.Cooloff(d, now)
				rt.cfg.Metrics.Forwards(rep.Endpoint, "shed").Inc()
				lastErr = fmt.Errorf("%s: shedding (429)", rep.Endpoint)
			case resp.status >= 500:
				rep.breaker.Failure()
				rt.cfg.Metrics.Forwards(rep.Endpoint, "error").Inc()
				lastErr = fmt.Errorf("%s: status %d", rep.Endpoint, resp.status)
			default:
				rep.breaker.Success()
				rt.cfg.Metrics.Forwards(rep.Endpoint, "ok").Inc()
				return resp, nil
			}
		}
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return nil, lastErr
}

// relay writes a buffered replica response to the client verbatim.
func relay(w http.ResponseWriter, resp *replicaResponse) {
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// modelScope resolves the {name} path segment into the replica-side
// path prefix and the routing-key prefix. op distinguishes the two
// single-pair endpoints sharing a handler.
func modelScope(r *http.Request, op string) (path, keyPrefix string) {
	name := r.PathValue("name")
	if name == "" {
		return r.URL.Path, ""
	}
	return "/models/" + name + "/" + op, name + "\x00"
}

// handleSingle serves /predict and /explain (and their model-scoped
// forms): the routing key is the model name plus the raw pair body, so
// identical pairs always land on the same replica while it is up —
// cache affinity for free.
func (rt *Router) handleSingle(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeBodyError(w, err)
			return
		}
		if len(bytes.TrimSpace(body)) == 0 {
			serve.WriteError(w, http.StatusBadRequest, "empty request body")
			return
		}
		path := r.URL.Path
		keyPrefix := ""
		if op != "" {
			path, keyPrefix = modelScope(r, op)
		}
		resp, err := rt.forward(r.Context(), http.MethodPost, path, body, keyPrefix+string(body))
		if err != nil {
			writeUnavailable(w, err)
			return
		}
		relay(w, resp)
	}
}

// routerBatchRequest decodes just enough of an inbound batch to
// partition it: each pair stays raw bytes and is re-emitted verbatim
// into its shard's sub-batch.
type routerBatchRequest struct {
	Pairs []json.RawMessage `json:"pairs"`
}

// routerBatchResponse mirrors wym-server's batch reply shape.
type routerBatchResponse struct {
	Results []json.RawMessage `json:"results"`
	Errors  int               `json:"errors"`
}

// handleBatch scatter-gathers a batch across the ring: items are
// grouped by their shard owner, sub-batches forwarded concurrently
// (each with the full failover walk), and per-item errors fill the
// slots of any shard that stays down — the batch itself never turns
// into a 5xx because one replica died.
func (rt *Router) handleBatch(scoped bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeBodyError(w, err)
			return
		}
		var req routerBatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			serve.WriteError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if len(req.Pairs) == 0 {
			serve.WriteError(w, http.StatusBadRequest, "batch has no pairs")
			return
		}
		if len(req.Pairs) > rt.cfg.MaxBatch {
			serve.WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("batch has %d pairs, limit is %d", len(req.Pairs), rt.cfg.MaxBatch))
			return
		}
		path := "/predict/batch"
		keyPrefix := ""
		if scoped {
			path, keyPrefix = modelScope(r, "predict/batch")
		}
		if rt.pool.Ring().Len() == 0 {
			writeUnavailable(w, ErrNoReplicas)
			return
		}

		// Partition by shard owner. Items whose key has no owner (the
		// ring emptied between the check above and here) fall into the
		// "" group and fail per-item like any downed shard.
		type group struct {
			indices []int
			items   []json.RawMessage
			key     string // a representative key: drives the failover walk
		}
		groups := make(map[string]*group)
		for i, raw := range req.Pairs {
			key := keyPrefix + string(raw)
			owner := rt.pool.Ring().Owner(key)
			g := groups[owner]
			if g == nil {
				g = &group{key: key}
				groups[owner] = g
			}
			g.indices = append(g.indices, i)
			g.items = append(g.items, raw)
		}

		out := routerBatchResponse{Results: make([]json.RawMessage, len(req.Pairs))}
		var (
			mu     sync.Mutex
			wg     sync.WaitGroup
			failed = func(g *group, msg string) {
				item, _ := json.Marshal(struct {
					Error string `json:"error"`
				}{Error: msg})
				mu.Lock()
				defer mu.Unlock()
				for _, idx := range g.indices {
					out.Results[idx] = item
					out.Errors++
				}
			}
		)
		for owner, g := range groups {
			if owner == "" {
				failed(g, "no replica available for shard")
				continue
			}
			wg.Add(1)
			go func(g *group) {
				defer wg.Done()
				sub, err := json.Marshal(routerBatchRequest{Pairs: g.items})
				if err != nil {
					failed(g, "internal error: "+err.Error())
					return
				}
				resp, err := rt.forward(r.Context(), http.MethodPost, path, sub, g.key)
				if err != nil {
					failed(g, "shard unavailable: "+err.Error())
					return
				}
				if resp.status != http.StatusOK {
					failed(g, fmt.Sprintf("shard rejected sub-batch: status %d", resp.status))
					return
				}
				var subResp routerBatchResponse
				if err := json.Unmarshal(resp.body, &subResp); err != nil ||
					len(subResp.Results) != len(g.indices) {
					failed(g, "shard returned a malformed batch response")
					return
				}
				mu.Lock()
				defer mu.Unlock()
				for k, idx := range g.indices {
					out.Results[idx] = subResp.Results[k]
				}
				out.Errors += subResp.Errors
			}(g)
		}
		wg.Wait()
		serve.WriteJSON(w, http.StatusOK, out)
	}
}

// handleSchema forwards to any available replica — every replica of a
// fleet serves the same default model family, so the first healthy
// answer is authoritative.
func (rt *Router) handleSchema(w http.ResponseWriter, r *http.Request) {
	resp, err := rt.forward(r.Context(), http.MethodGet, "/schema", nil, "schema")
	if err != nil {
		writeUnavailable(w, err)
		return
	}
	relay(w, resp)
}

// replicaStatus is one replica's row in the router's /readyz body.
type replicaStatus struct {
	Endpoint string      `json:"endpoint"`
	Admitted bool        `json:"admitted"`
	Healthy  bool        `json:"healthy"`
	Breaker  string      `json:"breaker"`
	Models   []ModelInfo `json:"models,omitempty"`
}

// handleReadyz reports fleet readiness: 200 while at least one replica
// is admitted to the ring, 503 otherwise, with per-replica detail
// either way.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reps := rt.pool.Replicas()
	statuses := make([]replicaStatus, 0, len(reps))
	for _, rep := range reps {
		statuses = append(statuses, replicaStatus{
			Endpoint: rep.Endpoint,
			Admitted: rt.pool.Ring().Has(rep.Endpoint),
			Healthy:  rep.Healthy(),
			Breaker:  rep.breaker.State().String(),
			Models:   rep.Models(),
		})
	}
	ready := rt.pool.Ring().Len() > 0
	status := http.StatusOK
	state := "ready"
	if !ready {
		status = http.StatusServiceUnavailable
		state = "no replicas"
	}
	serve.WriteJSON(w, status, struct {
		Status   string          `json:"status"`
		Replicas []replicaStatus `json:"replicas"`
	}{Status: state, Replicas: statuses})
}

// writeUnavailable maps a routing failure to the client: client
// cancellations propagate as 499-ish 503s with the cause, everything
// else is a plain 503 naming the last replica error.
func writeUnavailable(w http.ResponseWriter, err error) {
	msg := "no replica available"
	if err != nil && !errors.Is(err, ErrNoReplicas) {
		msg = "no replica available: " + err.Error()
	}
	serve.WriteError(w, http.StatusServiceUnavailable, msg)
}

// writeBodyError maps inbound body read failures (over-cap included).
func writeBodyError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		serve.WriteError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds "+strconv.FormatInt(maxErr.Limit, 10)+" bytes")
		return
	}
	serve.WriteError(w, http.StatusBadRequest, "reading request body: "+err.Error())
}
