package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes retry delays: exponential growth capped at Max,
// then "full jitter" — a uniform draw over [0, capped] — so a fleet of
// routers retrying a recovering replica spreads its load instead of
// stampeding in lockstep (the AWS architecture-blog result: full
// jitter wins over equal or no jitter for contended retries).
type Backoff struct {
	Base time.Duration // first-attempt ceiling (default 25ms)
	Max  time.Duration // growth cap (default 1s)

	mu   sync.Mutex
	rand *rand.Rand // injectable for deterministic tests
}

// NewBackoff builds a Backoff with its own seeded RNG. seed 0 draws a
// random seed; tests pass a fixed seed for reproducible delays.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{Base: base, Max: max, rand: rand.New(rand.NewSource(seed))}
}

// Delay returns the sleep before retry attempt (0-based): a uniform
// draw from [0, min(Max, Base·2^attempt)].
func (b *Backoff) Delay(attempt int) time.Duration {
	ceil := b.Base
	for i := 0; i < attempt && ceil < b.Max; i++ {
		ceil *= 2
	}
	if ceil > b.Max {
		ceil = b.Max
	}
	if ceil <= 0 {
		return 0
	}
	b.mu.Lock()
	d := time.Duration(b.rand.Int63n(int64(ceil) + 1))
	b.mu.Unlock()
	return d
}
