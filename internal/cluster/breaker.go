package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position. The zero value is
// Closed (traffic flows).
type BreakerState int32

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// HalfOpen: one probe request is allowed through; its outcome
	// decides between Closed and Open.
	HalfOpen
	// Open: requests are refused locally until the open window elapses.
	Open
)

// String names the state for logs and the breaker-state metric help.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	default:
		return "unknown"
	}
}

// Breaker is a per-replica circuit breaker. Closed counts consecutive
// failures and trips Open at the threshold; Open refuses locally (no
// network spent on a replica known to be failing) until the open
// window elapses, then admits exactly one half-open probe; the probe's
// success closes the breaker, its failure re-opens it for another
// window.
//
// The clock is injectable so tests step time instead of sleeping.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	threshold int
	openFor   time.Duration
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	now       func() time.Time
	onState   func(BreakerState) // observes every transition; may be nil
}

// BreakerConfig tunes a Breaker; zero fields take the defaults noted.
type BreakerConfig struct {
	Threshold int           // consecutive failures to trip (default 3)
	OpenFor   time.Duration // refusal window once tripped (default 5s)
	Now       func() time.Time
	OnState   func(BreakerState) // state-transition hook (metrics)
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{
		threshold: cfg.Threshold,
		openFor:   cfg.OpenFor,
		now:       cfg.Now,
		onState:   cfg.OnState,
	}
}

func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if b.onState != nil {
		b.onState(to)
	}
}

// Allow reports whether a request may proceed. In Open it flips to
// HalfOpen once the window has elapsed and admits a single probe;
// concurrent callers during a probe are refused so one slow probe
// cannot become a thundering herd onto a recovering replica.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false
		}
		b.transitionLocked(HalfOpen)
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a request that completed normally: resets the
// failure count and closes the breaker from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.transitionLocked(Closed)
}

// Failure records a failed request. In Closed it trips Open at the
// threshold; in HalfOpen the failed probe re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.transitionLocked(Open)
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.transitionLocked(Open)
		}
	case Open:
		// Already refusing; a late in-flight failure keeps the window.
	}
}

// Reset force-closes the breaker (health-probe re-admission path).
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.transitionLocked(Closed)
}

// State returns the current position without side effects.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
