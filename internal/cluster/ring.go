// Package cluster is the distributed-resilience layer behind
// cmd/wym-router: a consistent-hash ring over replica endpoints
// (virtual nodes so load spreads evenly and membership changes move few
// keys), per-replica circuit breakers (closed/open/half-open), retries
// with exponential backoff and full jitter, an active health prober
// that ejects failing replicas from the ring and re-admits them when
// /readyz recovers, and the routing handler that forwards predict
// traffic with deadline propagation and per-item batch degradation.
//
// The package deliberately speaks only HTTP and JSON shapes — it never
// imports the model packages — so the router binary stays a thin,
// stateless traffic layer that any wym-server fleet can sit behind.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many points each replica contributes to
// the ring when the caller does not choose. More vnodes flatten the
// load distribution at the cost of a longer sorted slice; 128 keeps
// the per-replica share within a few percent of fair for small fleets.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over replica endpoints. Lookups walk
// clockwise from the key's hash, so removing a replica only moves the
// keys it owned, and a Lookup with n > 1 yields the natural failover
// order (the replicas that would own the key if earlier ones vanished).
//
// Ring is safe for concurrent use; membership changes rebuild the
// point slice under a write lock while lookups take a read lock.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash     uint64
	endpoint string
}

// NewRing builds an empty ring; vnodes <= 0 uses DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hashKey is FNV-64a: no cryptographic need here, just a fast, stable,
// well-mixed 64-bit hash shared by vnode placement and key lookup.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts an endpoint (idempotent) and rebuilds the point slice.
func (r *Ring) Add(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[endpoint] {
		return
	}
	r.members[endpoint] = true
	r.rebuildLocked()
}

// Remove ejects an endpoint (idempotent). Keys it owned flow to their
// next clockwise owners; every other key keeps its replica.
func (r *Ring) Remove(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[endpoint] {
		return
	}
	delete(r.members, endpoint)
	r.rebuildLocked()
}

// Has reports current membership.
func (r *Ring) Has(endpoint string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[endpoint]
}

// Members returns the current endpoints, sorted for determinism.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for ep := range r.members {
		out = append(out, ep)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of member endpoints.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for ep := range r.members {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:     hashKey(fmt.Sprintf("%s#%d", ep, v)),
				endpoint: ep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].endpoint < r.points[j].endpoint
	})
}

// Lookup returns up to n distinct endpoints in preference order for
// key: the clockwise owner first, then the replicas that would inherit
// the key if the ones before them were ejected. n <= 0 means "all
// members". An empty ring returns nil.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	// First point with hash >= h, wrapping to 0.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		p := r.points[i]
		if !seen[p.endpoint] {
			seen[p.endpoint] = true
			out = append(out, p.endpoint)
			if len(out) == n {
				break
			}
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// Owner returns the primary owner for key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	eps := r.Lookup(key, 1)
	if len(eps) == 0 {
		return ""
	}
	return eps[0]
}
