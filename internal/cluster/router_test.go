package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wym/internal/obs"
)

// testRouter wires stubs -> pool -> router -> httptest front end.
func testRouter(t *testing.T, cfg RouterConfig, stubs ...*stubReplica) (*Router, *httptest.Server, *obs.Registry) {
	t.Helper()
	p, reg := testPool(t, stubs...)
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(reg)
	}
	if cfg.Backoff == nil {
		cfg.Backoff = NewBackoff(time.Millisecond, 5*time.Millisecond, 1)
	}
	rt := NewRouter(p, cfg)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, front, reg
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(b)
}

func pairBody(i int) string {
	return fmt.Sprintf(`{"left":["item %d","brand"],"right":["item %d","brand"]}`, i, i)
}

func TestRouterPredictKeyAffinity(t *testing.T) {
	a, b, c := newStubReplica(), newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	defer c.Close()
	_, front, _ := testRouter(t, RouterConfig{}, a, b, c)

	body := pairBody(7)
	for i := 0; i < 10; i++ {
		resp, got := postJSON(t, front.URL+"/predict", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d = %d (%s)", i, resp.StatusCode, got)
		}
		if !strings.Contains(got, `"match":true`) {
			t.Fatalf("predict body = %s", got)
		}
	}
	// The same pair must always land on the same replica.
	nonZero := 0
	for _, s := range []*stubReplica{a, b, c} {
		if s.Predicts() > 0 {
			nonZero++
			if s.Predicts() != 10 {
				t.Fatalf("owner saw %d predicts, want all 10", s.Predicts())
			}
		}
	}
	if nonZero != 1 {
		t.Fatalf("pair spread across %d replicas, want key affinity to exactly 1", nonZero)
	}
}

func TestRouterFailoverOnDeadReplica(t *testing.T) {
	a, b, c := newStubReplica(), newStubReplica(), newStubReplica()
	defer b.Close()
	defer c.Close()
	rt, front, reg := testRouter(t, RouterConfig{TryTimeout: 2 * time.Second}, a, b, c)

	// Kill a replica without telling the prober — the router must
	// discover it the hard way and fail over inside the request.
	a.Close()
	for i := 0; i < 30; i++ {
		resp, got := postJSON(t, front.URL+"/predict", pairBody(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d with a dead replica = %d (%s)", i, resp.StatusCode, got)
		}
	}
	// The dead replica's breaker opened after its failure threshold, so
	// later requests skipped it without a connection attempt.
	if got := rt.Pool().Replica(a.URL()).Breaker().State(); got != Open {
		t.Fatalf("dead replica breaker = %v, want open", got)
	}
	m := NewMetrics(reg)
	if m.Forwards(a.URL(), "error").Value() == 0 {
		t.Fatal("no forward errors recorded against the dead replica")
	}
	if m.BreakerState(a.URL()).Value() != int64(Open) {
		t.Fatalf("breaker-state gauge = %d, want %d", m.BreakerState(a.URL()).Value(), Open)
	}
	// Live replicas absorbed all the traffic.
	if b.Predicts()+c.Predicts() != 30 {
		t.Fatalf("live replicas served %d, want 30", b.Predicts()+c.Predicts())
	}
}

func TestRouterSlowReplicaTimesOutAndFailsOver(t *testing.T) {
	a, b := newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	_, front, _ := testRouter(t, RouterConfig{TryTimeout: 60 * time.Millisecond}, a, b)

	// Find a pair owned by a, then make a stall far past the per-try
	// budget: the router must cut it off and fail over to b.
	var body string
	for i := 0; ; i++ {
		body = pairBody(i)
		resp, _ := postJSON(t, front.URL+"/predict", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup predict = %d", resp.StatusCode)
		}
		if a.Predicts() > 0 {
			break
		}
	}
	a.stall.Store(int64(5 * time.Second))
	start := time.Now()
	resp, got := postJSON(t, front.URL+"/predict", body)
	took := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict behind slow replica = %d (%s)", resp.StatusCode, got)
	}
	if took > 2*time.Second {
		t.Fatalf("failover took %v — the slow replica's stall leaked through", took)
	}
}

func TestRouterHonorsRetryAfterCooloff(t *testing.T) {
	clk := newFakeClock()
	a, b := newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	rt, front, reg := testRouter(t, RouterConfig{Now: clk.Now}, a, b)

	// Find a pair owned by a.
	var body string
	for i := 0; ; i++ {
		body = pairBody(i)
		postJSON(t, front.URL+"/predict", body)
		if a.Predicts() > 0 {
			break
		}
	}
	aBefore := a.Predicts()

	// a starts shedding with a 2s Retry-After: the request fails over
	// to b, and a is parked for the advertised window.
	a.shed.Store(true)
	a.retryAfter.Store(2)
	resp, got := postJSON(t, front.URL+"/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict during shed = %d (%s)", resp.StatusCode, got)
	}
	rep := rt.Pool().Replica(a.URL())
	if !rep.CoolingOff(clk.Now()) {
		t.Fatal("429 Retry-After did not park the replica")
	}
	if NewMetrics(reg).Forwards(a.URL(), "shed").Value() == 0 {
		t.Fatal("shed outcome not counted")
	}
	// While parked, traffic for a's keys goes to b without contacting a.
	a.shed.Store(false)
	shedPredicts := a.Predicts()
	postJSON(t, front.URL+"/predict", body)
	if a.Predicts() != shedPredicts {
		t.Fatal("router sent traffic to a replica inside its Retry-After window")
	}
	// After the window the replica serves its keys again.
	clk.Advance(3 * time.Second)
	resp, _ = postJSON(t, front.URL+"/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("predict after cooloff failed")
	}
	if a.Predicts() <= aBefore {
		t.Fatal("replica never resumed serving after its cooloff")
	}
	// Shedding is not a breaker failure: the breaker stayed closed.
	if rep.Breaker().State() != Closed {
		t.Fatalf("breaker = %v after sheds, want closed", rep.Breaker().State())
	}
}

func TestRouterPanicRecoveryRetriesElsewhere(t *testing.T) {
	a, b := newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	rt, front, _ := testRouter(t, RouterConfig{}, a, b)
	_ = rt

	a.panics.Store(true)
	for i := 0; i < 10; i++ {
		resp, got := postJSON(t, front.URL+"/predict", pairBody(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d with a panicking replica = %d (%s)", i, resp.StatusCode, got)
		}
	}
	if b.Predicts() != 10 {
		t.Fatalf("healthy replica served %d of 10", b.Predicts())
	}
}

func TestRouterBatchScatterGather(t *testing.T) {
	a, b, c := newStubReplica(), newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	defer c.Close()
	_, front, _ := testRouter(t, RouterConfig{}, a, b, c)

	var pairs []string
	for i := 0; i < 24; i++ {
		pairs = append(pairs, pairBody(i))
	}
	body := `{"pairs":[` + strings.Join(pairs, ",") + `]}`
	resp, got := postJSON(t, front.URL+"/predict/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d (%s)", resp.StatusCode, got)
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
		Errors  int               `json:"errors"`
	}
	if err := json.Unmarshal([]byte(got), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 24 || out.Errors != 0 {
		t.Fatalf("batch results = %d, errors = %d", len(out.Results), out.Errors)
	}
	// The batch was sharded: more than one replica saw a sub-batch, and
	// the sub-batch sizes sum to the full batch.
	total, shards := 0, 0
	for _, s := range []*stubReplica{a, b, c} {
		for _, sz := range s.Batches() {
			total += sz
		}
		if len(s.Batches()) > 0 {
			shards++
		}
	}
	if total != 24 {
		t.Fatalf("sub-batches sum to %d, want 24", total)
	}
	if shards < 2 {
		t.Fatalf("batch landed on %d replicas, want scatter across ≥2", shards)
	}
}

func TestRouterBatchDegradesPerItemWhenShardIsDown(t *testing.T) {
	// One replica only, killed: every item fails per-item, the batch
	// itself stays a 200 — never a 5xx.
	a := newStubReplica()
	_, front, _ := testRouter(t, RouterConfig{Retries: 1, TryTimeout: time.Second}, a)
	a.Close()

	body := `{"pairs":[` + pairBody(1) + `,` + pairBody(2) + `]}`
	resp, got := postJSON(t, front.URL+"/predict/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded batch = %d, want 200 (%s)", resp.StatusCode, got)
	}
	var out struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal([]byte(got), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Errors != 2 {
		t.Fatalf("degraded batch: %d results, %d errors (%s)", len(out.Results), out.Errors, got)
	}
	for i, r := range out.Results {
		if !strings.Contains(r.Error, "shard unavailable") {
			t.Fatalf("item %d error = %q, want shard unavailable", i, r.Error)
		}
	}
}

func TestRouterNoReplicasIs503(t *testing.T) {
	a := newStubReplica()
	rt, front, _ := testRouter(t, RouterConfig{Retries: 1}, a)
	a.ready.Store(false)
	rt.Pool().ProbeAll(context.Background())
	rt.Pool().ProbeAll(context.Background())

	resp, got := postJSON(t, front.URL+"/predict", pairBody(0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict with empty ring = %d (%s)", resp.StatusCode, got)
	}
	resp, _ = postJSON(t, front.URL+"/predict/batch", `{"pairs":[`+pairBody(0)+`]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch with empty ring = %d", resp.StatusCode)
	}
	r, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router readyz with empty ring = %d, want 503", r.StatusCode)
	}
	a.Close()
}

func TestRouterModelScopedRoutes(t *testing.T) {
	a := newStubReplica()
	defer a.Close()
	_, front, _ := testRouter(t, RouterConfig{}, a)

	resp, got := postJSON(t, front.URL+"/models/catalog/predict", pairBody(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model-scoped predict = %d (%s)", resp.StatusCode, got)
	}
	resp, _ = postJSON(t, front.URL+"/models/catalog/predict/batch", `{"pairs":[`+pairBody(3)+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model-scoped batch = %d", resp.StatusCode)
	}
	paths := a.Paths()
	wantSingle, wantBatch := false, false
	for _, p := range paths {
		if p == "/models/catalog/predict" {
			wantSingle = true
		}
		if p == "/models/catalog/predict/batch" {
			wantBatch = true
		}
	}
	if !wantSingle || !wantBatch {
		t.Fatalf("forwarded paths = %v, want model-scoped paths preserved", paths)
	}
}

func TestRouterReadyzReportsReplicaDetail(t *testing.T) {
	a, b := newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	rt, front, _ := testRouter(t, RouterConfig{}, a, b)
	rt.Pool().ProbeAll(context.Background())

	r, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", r.StatusCode)
	}
	var body struct {
		Status   string `json:"status"`
		Replicas []struct {
			Endpoint string      `json:"endpoint"`
			Admitted bool        `json:"admitted"`
			Healthy  bool        `json:"healthy"`
			Breaker  string      `json:"breaker"`
			Models   []ModelInfo `json:"models"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ready" || len(body.Replicas) != 2 {
		t.Fatalf("readyz body = %+v", body)
	}
	for _, rep := range body.Replicas {
		if !rep.Admitted || !rep.Healthy || rep.Breaker != "closed" {
			t.Fatalf("replica status = %+v", rep)
		}
		if len(rep.Models) != 1 || rep.Models[0].Format != "gob" {
			t.Fatalf("replica models = %+v — readyz model view missing", rep.Models)
		}
	}
}

func TestRouterBadRequests(t *testing.T) {
	a := newStubReplica()
	defer a.Close()
	_, front, _ := testRouter(t, RouterConfig{MaxBatch: 2}, a)

	resp, _ := postJSON(t, front.URL+"/predict", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, front.URL+"/predict/batch", `{"pairs":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, front.URL+"/predict/batch", `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}
	resp, got := postJSON(t, front.URL+"/predict/batch",
		`{"pairs":[`+pairBody(1)+`,`+pairBody(2)+`,`+pairBody(3)+`]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(got, "limit is 2") {
		t.Fatalf("over-limit batch = %d (%s), want 400", resp.StatusCode, got)
	}
}

func TestRouterSchemaForwarded(t *testing.T) {
	a := newStubReplica()
	defer a.Close()
	_, front, _ := testRouter(t, RouterConfig{}, a)
	r, err := http.Get(front.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	b, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK || !strings.Contains(string(b), "brand") {
		t.Fatalf("schema = %d (%s)", r.StatusCode, b)
	}
}

func TestRouterRelaysReplicaClientErrors(t *testing.T) {
	// A 4xx from the replica is the replica's verdict on the request —
	// relayed as-is, never retried, never a breaker failure.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprintln(w, `{"status":"ready"}`)
			return
		}
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"wrong attribute count"}`)
	}))
	defer bad.Close()
	reg := obs.NewRegistry()
	p := NewPool([]string{bad.URL}, PoolConfig{Metrics: NewMetrics(reg)})
	rt := NewRouter(p, RouterConfig{Metrics: NewMetrics(reg)})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, got := postJSON(t, front.URL+"/predict", pairBody(0))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(got, "wrong attribute count") {
		t.Fatalf("relayed 400 = %d (%s)", resp.StatusCode, got)
	}
	if p.Replica(bad.URL).Breaker().State() != Closed {
		t.Fatal("a relayed 4xx tripped the breaker")
	}
}
