package cluster

import (
	"testing"
	"time"
)

func TestBackoffFullJitterBounds(t *testing.T) {
	bo := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	ceilings := []time.Duration{
		10 * time.Millisecond, // attempt 0
		20 * time.Millisecond, // attempt 1
		40 * time.Millisecond, // attempt 2
		80 * time.Millisecond, // attempt 3
		80 * time.Millisecond, // attempt 4: capped
		80 * time.Millisecond, // far past the cap
	}
	for attempt, ceil := range ceilings {
		a := attempt
		if attempt == len(ceilings)-1 {
			a = 20
		}
		for i := 0; i < 200; i++ {
			d := bo.Delay(a)
			if d < 0 || d > ceil {
				t.Fatalf("Delay(%d) = %v, want within [0, %v]", a, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	a := NewBackoff(10*time.Millisecond, time.Second, 7)
	b := NewBackoff(10*time.Millisecond, time.Second, 7)
	for i := 0; i < 50; i++ {
		if da, db := a.Delay(i%5), b.Delay(i%5); da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffJitterActuallyVaries(t *testing.T) {
	bo := NewBackoff(time.Second, time.Second, 3)
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[bo.Delay(0)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("50 draws produced only %d distinct delays — jitter missing", len(seen))
	}
}

func TestBackoffDefaults(t *testing.T) {
	bo := NewBackoff(0, 0, 0)
	if bo.Base != 25*time.Millisecond || bo.Max != time.Second {
		t.Fatalf("defaults = base %v max %v", bo.Base, bo.Max)
	}
}
