package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"
)

// stubReplica is a protocol-faithful fake wym-server for router tests:
// it answers /readyz, /predict, /explain, /predict/batch, /schema, and
// the model-scoped forms, with switches for shedding, failing, and
// stalling so tests steer fleet behavior without real models.
type stubReplica struct {
	srv *httptest.Server

	ready      atomic.Bool
	fail       atomic.Bool  // 500 every predict
	shed       atomic.Bool  // 429 + Retry-After every predict
	retryAfter atomic.Int64 // seconds advertised on shed
	stall      atomic.Int64 // nanoseconds to sleep before answering
	panics     atomic.Bool  // panic inside the handler (recovered by middleware)

	mu       sync.Mutex
	predicts int
	batches  []int    // batch sizes seen
	paths    []string // request paths seen
	models   []ModelInfo
}

func newStubReplica() *stubReplica {
	s := &stubReplica{}
	s.ready.Store(true)
	s.retryAfter.Store(1)
	s.models = []ModelInfo{{Name: "default", Format: "gob", Fingerprint: "fnv64:stub"}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
			return
		}
		s.mu.Lock()
		models := s.models
		s.mu.Unlock()
		json.NewEncoder(w).Encode(struct {
			Status string      `json:"status"`
			Models []ModelInfo `json:"models"`
		}{"ready", models})
	})
	mux.HandleFunc("GET /schema", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]string{"name", "brand"})
	})
	single := func(w http.ResponseWriter, r *http.Request) {
		s.note(r.URL.Path)
		if !s.gate(w, r) {
			return
		}
		s.mu.Lock()
		s.predicts++
		s.mu.Unlock()
		fmt.Fprintln(w, `{"match":true,"probability":0.9}`)
	}
	batch := func(w http.ResponseWriter, r *http.Request) {
		s.note(r.URL.Path)
		if !s.gate(w, r) {
			return
		}
		var req struct {
			Pairs []json.RawMessage `json:"pairs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.batches = append(s.batches, len(req.Pairs))
		s.mu.Unlock()
		results := make([]json.RawMessage, len(req.Pairs))
		for i := range results {
			results[i] = json.RawMessage(`{"match":true,"probability":0.9}`)
		}
		json.NewEncoder(w).Encode(struct {
			Results []json.RawMessage `json:"results"`
			Errors  int               `json:"errors"`
		}{results, 0})
	}
	mux.HandleFunc("POST /predict", single)
	mux.HandleFunc("POST /explain", single)
	mux.HandleFunc("POST /predict/batch", batch)
	mux.HandleFunc("POST /models/{name}/predict", single)
	mux.HandleFunc("POST /models/{name}/explain", single)
	mux.HandleFunc("POST /models/{name}/predict/batch", batch)
	// Recover injected panics like the real server's middleware would,
	// turning them into 500s instead of killing the test process.
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if recover() != nil {
				w.WriteHeader(http.StatusInternalServerError)
			}
		}()
		mux.ServeHTTP(w, r)
	}))
	return s
}

// gate applies the configured fault behavior; reports whether the
// request should proceed to a normal answer.
func (s *stubReplica) gate(w http.ResponseWriter, r *http.Request) bool {
	if d := s.stall.Load(); d > 0 {
		select {
		case <-time.After(time.Duration(d)):
		case <-r.Context().Done():
			return false
		}
	}
	if s.panics.Load() {
		panic("stub: injected panic")
	}
	if s.shed.Load() {
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfter.Load()))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"server at capacity, retry later"}`)
		return false
	}
	if s.fail.Load() {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"boom"}`)
		return false
	}
	return true
}

func (s *stubReplica) note(path string) {
	s.mu.Lock()
	s.paths = append(s.paths, path)
	s.mu.Unlock()
}

func (s *stubReplica) URL() string { return s.srv.URL }

func (s *stubReplica) Predicts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.predicts
}

func (s *stubReplica) Batches() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.batches...)
}

func (s *stubReplica) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.paths...)
}

func (s *stubReplica) Close() { s.srv.Close() }
