package cluster

import (
	"wym/internal/obs"
)

// Metrics is the router's observability bundle. Per-replica series are
// created on first use (replica sets are small and bounded by the
// -replicas flag, so label cardinality stays fixed in practice). A nil
// *Metrics is a transparent no-op so tests can wire a pool without a
// registry.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics binds the bundle to a registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{reg: reg}
}

// BreakerState returns the per-replica breaker gauge: 0 closed,
// 1 half-open, 2 open (the BreakerState enum values).
func (m *Metrics) BreakerState(replica string) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.reg.Gauge("wym_router_breaker_state",
		"Circuit breaker position per replica: 0 closed, 1 half-open, 2 open.",
		obs.L("replica", replica))
}

// Retries counts forwarded attempts beyond the first per replica.
func (m *Metrics) Retries(replica string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("wym_router_retries_total",
		"Predict attempts beyond the first, by the replica retried against.",
		obs.L("replica", replica))
}

// Forwards counts proxied attempts per replica and outcome
// ("ok", "error", "shed", "rejected").
func (m *Metrics) Forwards(replica, outcome string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("wym_router_forwards_total",
		"Forwarded attempts by replica and outcome.",
		obs.L("replica", replica), obs.L("outcome", outcome))
}

// Ejections counts health-probe ring ejections per replica.
func (m *Metrics) Ejections(replica string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("wym_router_ejections_total",
		"Replicas ejected from the ring by the health prober.",
		obs.L("replica", replica))
}

// Readmissions counts health-probe ring re-admissions per replica.
func (m *Metrics) Readmissions(replica string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("wym_router_readmissions_total",
		"Replicas re-admitted to the ring after /readyz recovered.",
		obs.L("replica", replica))
}

// ReplicasReady is the count of ring members (admitted replicas).
func (m *Metrics) ReplicasReady() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.reg.Gauge("wym_router_replicas_ready",
		"Replicas currently admitted to the routing ring.")
}

// RoutedSeconds is the routed-request latency histogram per route —
// the client-observed time including failover walks and retries.
func (m *Metrics) RoutedSeconds(route string) *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.reg.Histogram("wym_router_request_seconds",
		"End-to-end routed request latency by route, retries included.",
		obs.DefaultLatencyBuckets, obs.L("route", route))
}
