package cluster

import (
	"fmt"
	"testing"
)

func TestRingLookupDeterministicAndDistinct(t *testing.T) {
	r := NewRing(64)
	eps := []string{"http://a:1", "http://b:2", "http://c:3"}
	for _, ep := range eps {
		r.Add(ep)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := r.Lookup(key, 0)
		if len(first) != 3 {
			t.Fatalf("Lookup(%q) returned %d endpoints, want 3", key, len(first))
		}
		seen := map[string]bool{}
		for _, ep := range first {
			if seen[ep] {
				t.Fatalf("Lookup(%q) repeated endpoint %s", key, ep)
			}
			seen[ep] = true
		}
		again := r.Lookup(key, 0)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("Lookup(%q) unstable: %v vs %v", key, first, again)
			}
		}
		if r.Owner(key) != first[0] {
			t.Fatalf("Owner(%q) = %s, want %s", key, r.Owner(key), first[0])
		}
	}
}

func TestRingRemoveOnlyMovesRemovedKeys(t *testing.T) {
	r := NewRing(0)
	eps := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	for _, ep := range eps {
		r.Add(ep)
	}
	const n = 2000
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key] = r.Owner(key)
	}
	victim := "http://b:2"
	r.Remove(victim)
	moved := 0
	for key, owner := range before {
		now := r.Owner(key)
		if owner == victim {
			if now == victim {
				t.Fatalf("key %q still owned by removed replica", key)
			}
			moved++
			continue
		}
		if now != owner {
			t.Fatalf("key %q moved from %s to %s though %s was removed", key, owner, now, victim)
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned no keys — vnode placement is broken")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	counts := map[string]int{}
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("http://replica-%d:80", i))
	}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("pair-%d", i))]++
	}
	for ep, c := range counts {
		share := float64(c) / n
		if share < 0.15 || share > 0.55 {
			t.Fatalf("replica %s owns %.1f%% of keys — ring is badly unbalanced (%v)",
				ep, 100*share, counts)
		}
	}
}

func TestRingReadmissionRestoresOwnership(t *testing.T) {
	r := NewRing(0)
	for _, ep := range []string{"http://a:1", "http://b:2", "http://c:3"} {
		r.Add(ep)
	}
	key := "some-pair"
	owner := r.Owner(key)
	r.Remove(owner)
	if got := r.Owner(key); got == owner {
		t.Fatalf("key still routed to ejected replica %s", owner)
	}
	r.Add(owner)
	if got := r.Owner(key); got != owner {
		t.Fatalf("re-admission changed ownership: %s, want %s", got, owner)
	}
}

func TestRingEmptyAndBounds(t *testing.T) {
	r := NewRing(8)
	if got := r.Lookup("x", 0); got != nil {
		t.Fatalf("empty ring Lookup = %v, want nil", got)
	}
	if r.Owner("x") != "" {
		t.Fatal("empty ring Owner should be empty")
	}
	r.Add("http://a:1")
	r.Add("http://a:1") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add", r.Len())
	}
	if got := r.Lookup("x", 5); len(got) != 1 {
		t.Fatalf("Lookup n>members = %v, want 1 endpoint", got)
	}
	r.Remove("http://missing") // idempotent no-op
	if !r.Has("http://a:1") || r.Has("http://missing") {
		t.Fatal("Has gave wrong membership")
	}
	if members := r.Members(); len(members) != 1 || members[0] != "http://a:1" {
		t.Fatalf("Members = %v", members)
	}
}
