package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"

	"wym/internal/obs"
)

// testPool builds a pool over the stubs with fast probe settings and a
// live metrics bundle.
func testPool(t *testing.T, stubs ...*stubReplica) (*Pool, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	eps := make([]string, len(stubs))
	for i, s := range stubs {
		eps[i] = s.URL()
	}
	p := NewPool(eps, PoolConfig{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		EjectAfter:    2,
		Breaker:       BreakerConfig{Threshold: 2, OpenFor: 100 * time.Millisecond},
		Metrics:       NewMetrics(reg),
	})
	return p, reg
}

func TestPoolProbeEjectsAndReadmits(t *testing.T) {
	a, b := newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	p, reg := testPool(t, a, b)
	ctx := context.Background()

	p.ProbeAll(ctx)
	if p.Ring().Len() != 2 {
		t.Fatalf("ring has %d members after healthy probe, want 2", p.Ring().Len())
	}
	if !p.Replica(b.URL()).Healthy() {
		t.Fatal("healthy replica marked unhealthy")
	}
	// The prober learned what each replica serves from /readyz.
	if models := p.Replica(a.URL()).Models(); len(models) != 1 || models[0].Name != "default" {
		t.Fatalf("probe did not capture resident models: %+v", models)
	}

	// b starts failing readiness: first failed probe keeps it admitted
	// (EjectAfter 2), the second ejects.
	b.ready.Store(false)
	p.ProbeAll(ctx)
	if !p.Ring().Has(b.URL()) {
		t.Fatal("one failed probe ejected the replica, EjectAfter is 2")
	}
	p.ProbeAll(ctx)
	if p.Ring().Has(b.URL()) {
		t.Fatal("replica was not ejected after consecutive failed probes")
	}
	if p.Replica(b.URL()).Healthy() {
		t.Fatal("ejected replica still marked healthy")
	}
	if got := NewMetrics(reg).Ejections(b.URL()).Value(); got != 1 {
		t.Fatalf("ejections counter = %d, want 1", got)
	}
	if got := NewMetrics(reg).ReplicasReady().Value(); got != 1 {
		t.Fatalf("replicas_ready gauge = %d, want 1", got)
	}

	// Poison its breaker too, then let readiness recover: one probe
	// re-admits and resets the breaker.
	p.Replica(b.URL()).Breaker().Failure()
	p.Replica(b.URL()).Breaker().Failure()
	if p.Replica(b.URL()).Breaker().State() != Open {
		t.Fatal("setup: breaker should be open")
	}
	b.ready.Store(true)
	p.ProbeAll(ctx)
	if !p.Ring().Has(b.URL()) {
		t.Fatal("recovered replica was not re-admitted")
	}
	if p.Replica(b.URL()).Breaker().State() != Closed {
		t.Fatal("re-admission did not reset the breaker")
	}
	if got := NewMetrics(reg).Readmissions(b.URL()).Value(); got != 1 {
		t.Fatalf("readmissions counter = %d, want 1", got)
	}
}

func TestPoolStartProbesOnItsOwn(t *testing.T) {
	a := newStubReplica()
	defer a.Close()
	p, _ := testPool(t, a)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)
	deadline := time.After(5 * time.Second)
	for p.ProbeSweeps() < 2 {
		select {
		case <-deadline:
			t.Fatal("probe loop never swept")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestPoolCandidatesSkipEjected(t *testing.T) {
	a, b := newStubReplica(), newStubReplica()
	defer a.Close()
	defer b.Close()
	p, _ := testPool(t, a, b)
	b.ready.Store(false)
	p.ProbeAll(context.Background())
	p.ProbeAll(context.Background())
	cands := p.Candidates("any-key")
	if len(cands) != 1 || cands[0].Endpoint != a.URL() {
		t.Fatalf("candidates = %v, want only the healthy replica", cands)
	}
}

func TestReplicaCooloff(t *testing.T) {
	rep := &Replica{Endpoint: "http://x"}
	now := time.Unix(1000, 0)
	if rep.CoolingOff(now) {
		t.Fatal("fresh replica is cooling off")
	}
	rep.Cooloff(2*time.Second, now)
	if !rep.CoolingOff(now.Add(time.Second)) {
		t.Fatal("replica not cooling inside the window")
	}
	if rep.CoolingOff(now.Add(3 * time.Second)) {
		t.Fatal("replica still cooling after the window")
	}
	// A shorter later cooloff never shortens a longer one.
	rep.Cooloff(10*time.Second, now)
	rep.Cooloff(1*time.Second, now)
	if !rep.CoolingOff(now.Add(5 * time.Second)) {
		t.Fatal("shorter cooloff overwrote a longer one")
	}
	// Zero and negative durations are ignored.
	rep2 := &Replica{Endpoint: "http://y"}
	rep2.Cooloff(0, now)
	rep2.Cooloff(-time.Second, now)
	if rep2.CoolingOff(now) {
		t.Fatal("non-positive cooloff parked the replica")
	}
}

func TestRetryAfterDuration(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 7 ", 7 * time.Second},
		{"0", 0},
		{"-2", 0},
		{"soon", 0},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.header != "" {
			h.Set("Retry-After", tc.header)
		}
		if got := retryAfterDuration(h); got != tc.want {
			t.Fatalf("retryAfterDuration(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestPoolDedupesAndNormalizesEndpoints(t *testing.T) {
	p := NewPool([]string{"http://a:1/", "http://a:1", " ", ""}, PoolConfig{})
	if got := len(p.Replicas()); got != 1 {
		t.Fatalf("replicas = %d, want 1 after dedupe", got)
	}
	if p.Replicas()[0].Endpoint != "http://a:1" {
		t.Fatalf("endpoint = %q, want trailing slash trimmed", p.Replicas()[0].Endpoint)
	}
}
