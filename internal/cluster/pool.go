package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ModelInfo is one resident model as a replica's /readyz reports it —
// the router and operators use it to see what a replica actually
// serves (name, on-disk format, artifact fingerprint).
type ModelInfo struct {
	Name        string `json:"name"`
	Format      string `json:"format"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// readyzBody is the subset of a replica's /readyz response the prober
// consumes.
type readyzBody struct {
	Status string      `json:"status"`
	Models []ModelInfo `json:"models"`
}

// Replica is one wym-server endpoint plus the router's local view of
// it: breaker, health, shed cooloff, and the models its /readyz last
// reported.
type Replica struct {
	Endpoint string // base URL, e.g. "http://10.0.0.7:8080"

	breaker      *Breaker
	healthy      atomic.Bool
	cooloffUntil atomic.Int64 // unix nanos; 429 Retry-After parking
	models       atomic.Value // []ModelInfo
	probeFails   int          // consecutive probe failures (prober goroutine only)
}

// Models returns the resident models the replica last reported.
func (rep *Replica) Models() []ModelInfo {
	v, _ := rep.models.Load().([]ModelInfo)
	return v
}

// Healthy reports the prober's current verdict.
func (rep *Replica) Healthy() bool { return rep.healthy.Load() }

// Breaker exposes the replica's circuit breaker (tests and metrics).
func (rep *Replica) Breaker() *Breaker { return rep.breaker }

// Cooloff parks the replica until now+d — the shed-backoff path: a 429
// with Retry-After means the replica is up but saturated, so the
// router stops offering it traffic for the advertised window instead
// of tripping the breaker.
func (rep *Replica) Cooloff(d time.Duration, now time.Time) {
	if d <= 0 {
		return
	}
	until := now.Add(d).UnixNano()
	for {
		cur := rep.cooloffUntil.Load()
		if cur >= until || rep.cooloffUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// CoolingOff reports whether the replica is parked by a shed response.
func (rep *Replica) CoolingOff(now time.Time) bool {
	return now.UnixNano() < rep.cooloffUntil.Load()
}

// PoolConfig tunes a Pool. Zero fields take the defaults noted.
type PoolConfig struct {
	VirtualNodes  int           // ring vnodes per replica (default DefaultVirtualNodes)
	ProbeInterval time.Duration // /readyz cadence (default 2s)
	ProbeTimeout  time.Duration // per-probe budget (default 1s)
	EjectAfter    int           // consecutive probe failures to eject (default 2)
	Breaker       BreakerConfig // per-replica breaker settings
	Client        *http.Client  // probe client (default: fresh client, ProbeTimeout)
	Logger        *log.Logger   // optional transition log
	Metrics       *Metrics      // optional observability bundle
	Now           func() time.Time
}

// Pool owns the replica set: the consistent-hash ring of admitted
// members, per-replica breakers, and the active health prober that
// ejects and re-admits replicas as /readyz fails and recovers. Every
// configured replica keeps its Replica record forever; only ring
// membership changes.
type Pool struct {
	cfg      PoolConfig
	ring     *Ring
	mu       sync.RWMutex
	replicas map[string]*Replica
	order    []string // configured order, for deterministic Replicas()

	probes atomic.Int64 // completed probe sweeps (tests wait on it)
}

// NewPool builds a pool over the endpoints; all start admitted and
// healthy (the first probe sweep corrects optimism within one
// interval).
func NewPool(endpoints []string, cfg PoolConfig) *Pool {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	p := &Pool{
		cfg:      cfg,
		ring:     NewRing(cfg.VirtualNodes),
		replicas: make(map[string]*Replica, len(endpoints)),
	}
	for _, ep := range endpoints {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep == "" || p.replicas[ep] != nil {
			continue
		}
		rep := &Replica{Endpoint: ep}
		bcfg := cfg.Breaker
		bcfg.Now = cfg.Now
		gauge := cfg.Metrics.BreakerState(ep)
		bcfg.OnState = func(s BreakerState) { gauge.Set(int64(s)) }
		rep.breaker = NewBreaker(bcfg)
		rep.healthy.Store(true)
		p.replicas[ep] = rep
		p.order = append(p.order, ep)
		p.ring.Add(ep)
	}
	cfg.Metrics.ReplicasReady().Set(int64(p.ring.Len()))
	return p
}

// Ring exposes the routing ring.
func (p *Pool) Ring() *Ring { return p.ring }

// Replica returns the record for an endpoint, nil if unknown.
func (p *Pool) Replica(endpoint string) *Replica {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.replicas[endpoint]
}

// Replicas returns all configured replicas in flag order, admitted or
// not.
func (p *Pool) Replicas() []*Replica {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Replica, 0, len(p.order))
	for _, ep := range p.order {
		out = append(out, p.replicas[ep])
	}
	return out
}

// Candidates returns the replicas to try for key in preference order:
// the ring walk over admitted members. Ejected replicas are absent by
// construction; breaker and cooloff filtering happens at send time so
// a half-open probe slot is only claimed when a request actually goes
// out.
func (p *Pool) Candidates(key string) []*Replica {
	eps := p.ring.Lookup(key, 0)
	out := make([]*Replica, 0, len(eps))
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, ep := range eps {
		if rep := p.replicas[ep]; rep != nil {
			out = append(out, rep)
		}
	}
	return out
}

// Start runs the probe loop until ctx ends.
func (p *Pool) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(p.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeSweeps reports how many full probe sweeps have completed
// (tests use it to wait for "within one probe interval" behavior).
func (p *Pool) ProbeSweeps() int64 { return p.probes.Load() }

// ProbeAll probes every configured replica once, concurrently, and
// applies ejections and re-admissions.
func (p *Pool) ProbeAll(ctx context.Context) {
	reps := p.Replicas()
	var wg sync.WaitGroup
	for _, rep := range reps {
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			p.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
	p.cfg.Metrics.ReplicasReady().Set(int64(p.ring.Len()))
	p.probes.Add(1)
}

// probe hits one replica's /readyz and updates health, membership, and
// the resident-model view. Mutating rep.probeFails is safe because
// probes for a given replica never overlap (ProbeAll joins before the
// next sweep starts).
func (p *Pool) probe(ctx context.Context, rep *Replica) {
	pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	ok, models := p.checkReadyz(pctx, rep.Endpoint)
	if ok {
		rep.probeFails = 0
		if models != nil {
			rep.models.Store(models)
		}
		wasHealthy := rep.healthy.Swap(true)
		if !p.ring.Has(rep.Endpoint) {
			// Re-admission: the replica answered /readyz again, so it
			// rejoins the ring and its breaker starts fresh.
			p.ring.Add(rep.Endpoint)
			rep.breaker.Reset()
			p.cfg.Metrics.Readmissions(rep.Endpoint).Inc()
			p.logf("replica %s re-admitted (readyz ok)", rep.Endpoint)
		} else if !wasHealthy {
			rep.breaker.Reset()
		}
		return
	}
	rep.probeFails++
	if rep.probeFails < p.cfg.EjectAfter {
		return
	}
	rep.healthy.Store(false)
	if p.ring.Has(rep.Endpoint) {
		p.ring.Remove(rep.Endpoint)
		p.cfg.Metrics.Ejections(rep.Endpoint).Inc()
		p.logf("replica %s ejected after %d failed probes", rep.Endpoint, rep.probeFails)
	}
}

// checkReadyz performs one readiness probe.
func (p *Pool) checkReadyz(ctx context.Context, endpoint string) (ok bool, models []ModelInfo) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint+"/readyz", nil)
	if err != nil {
		return false, nil
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return false, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return false, nil
	}
	var rb readyzBody
	if err := json.Unmarshal(body, &rb); err != nil {
		// A 200 with an unparseable body still counts as ready — the
		// prober's job is admission, the model view is best-effort.
		return true, nil
	}
	return true, rb.Models
}

func (p *Pool) logf(format string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Printf(format, args...)
	}
}

// retryAfterDuration parses a Retry-After header (seconds form) into a
// duration; 0 when absent or malformed. HTTP-date form is not worth
// supporting here — serve.Limiter always sends whole seconds.
func retryAfterDuration(h http.Header) time.Duration {
	v := strings.TrimSpace(h.Get("Retry-After"))
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// ErrNoReplicas is returned when every candidate for a key is
// unavailable after retries.
var ErrNoReplicas = fmt.Errorf("cluster: no replica available")
