// Package features implements the explainable matcher's feature
// engineering (§4.3 of the paper) and its inverse.
//
// The forward direction turns a record's decision units and relevance
// scores into a fixed-length vector by applying statistical operators
// (count, sum, mean, median, max, min, range) to the scores aggregated per
// scope: per schema attribute split into paired/unpaired units (structural
// knowledge), and per record split into all/positive/negative scores
// (pragmatic knowledge).
//
// The inverse direction — the heart of the interpretability claim — takes
// the fitted coefficients of a linear (or coefficient-bearing) classifier
// and redistributes each coefficient onto the decision units that fed its
// feature: 1/N to each unit of a mean, 1 to each unit of a sum or count,
// the whole weight to the arg-max/arg-min unit of an extremum, split
// across the middle elements for a median, +1/-1 to the extremes of a
// range. Each unit's impact is its relevance score times the average of
// its received coefficient shares.
package features

import (
	"fmt"
	"sort"

	"wym/internal/units"
)

// Filter selects which units of a scope feed a feature.
type Filter int

// Filters.
const (
	All      Filter = iota // every unit in scope
	Paired                 // paired units only
	Unpaired               // unpaired units only
	Positive               // units with a positive relevance score
	Negative               // units with a negative relevance score
)

var filterNames = map[Filter]string{
	All: "all", Paired: "paired", Unpaired: "unpaired",
	Positive: "pos", Negative: "neg",
}

// Op is a statistical operator over the selected units' relevance scores.
type Op int

// Operators.
const (
	Count Op = iota
	Sum
	Mean
	Median
	Max
	Min
	Range
)

var opNames = map[Op]string{
	Count: "count", Sum: "sum", Mean: "mean", Median: "median",
	Max: "max", Min: "min", Range: "range",
}

// RecordScope marks a Spec that aggregates over the whole record rather
// than one attribute.
const RecordScope = -1

// Spec describes a single engineered feature.
type Spec struct {
	Scope  int // attribute index, or RecordScope
	Filter Filter
	Op     Op
}

// Name renders a stable identifier such as "attr1.paired.mean".
func (s Spec) Name() string {
	scope := "record"
	if s.Scope != RecordScope {
		scope = fmt.Sprintf("attr%d", s.Scope)
	}
	return scope + "." + filterNames[s.Filter] + "." + opNames[s.Op]
}

// Space is an ordered list of feature Specs for a schema of NumAttrs
// attributes. The same Space must be used to featurize training and test
// records and to invert coefficients.
type Space struct {
	Specs    []Spec
	NumAttrs int
}

// attrOps are the operators applied to each attribute × {paired, unpaired}
// scope; extrema and spread are reserved for the record scope, where more
// units make them stable.
var attrOps = []Op{Count, Sum, Mean, Max, Min}

// recordOps are the operators applied to each record × {all, pos, neg}.
var recordOps = []Op{Count, Sum, Mean, Median, Max, Min, Range}

// NewSpace builds the full WYM feature space: for every attribute the
// attrOps over paired and over unpaired units, plus the recordOps over
// all, positive and negative scores.
func NewSpace(numAttrs int) *Space {
	s := &Space{NumAttrs: numAttrs}
	for a := 0; a < numAttrs; a++ {
		for _, f := range []Filter{Paired, Unpaired} {
			for _, op := range attrOps {
				s.Specs = append(s.Specs, Spec{Scope: a, Filter: f, Op: op})
			}
		}
	}
	for _, f := range []Filter{All, Positive, Negative} {
		for _, op := range recordOps {
			s.Specs = append(s.Specs, Spec{Scope: RecordScope, Filter: f, Op: op})
		}
	}
	return s
}

// NewSimplifiedSpace builds the 6-feature ablation space of Table 4
// ("smp. feat."): count and mean over all, positive and negative scores.
func NewSimplifiedSpace() *Space {
	s := &Space{NumAttrs: 0}
	for _, f := range []Filter{All, Positive, Negative} {
		for _, op := range []Op{Count, Mean} {
			s.Specs = append(s.Specs, Spec{Scope: RecordScope, Filter: f, Op: op})
		}
	}
	return s
}

// Dim returns the number of features.
func (s *Space) Dim() int { return len(s.Specs) }

// members returns the indices of the units selected by the spec.
func (s *Space) members(spec Spec, us []units.Unit, scores []float64) []int {
	var out []int
	for i, u := range us {
		if spec.Scope != RecordScope && u.Attr != spec.Scope {
			continue
		}
		switch spec.Filter {
		case Paired:
			if u.Kind != units.Paired {
				continue
			}
		case Unpaired:
			if u.Kind == units.Paired {
				continue
			}
		case Positive:
			if scores[i] <= 0 {
				continue
			}
		case Negative:
			if scores[i] >= 0 {
				continue
			}
		}
		out = append(out, i)
	}
	return out
}

// Vector featurizes one record: us and scores must be aligned (scores[i]
// is the relevance of us[i]). Records whose units live in attributes
// beyond NumAttrs still contribute to the record-scope features.
func (s *Space) Vector(us []units.Unit, scores []float64) []float64 {
	if len(us) != len(scores) {
		panic(fmt.Sprintf("features: %d units but %d scores", len(us), len(scores)))
	}
	out := make([]float64, len(s.Specs))
	for k, spec := range s.Specs {
		m := s.members(spec, us, scores)
		vals := make([]float64, len(m))
		for j, i := range m {
			vals[j] = scores[i]
		}
		out[k] = apply(spec.Op, vals)
	}
	return out
}

func apply(op Op, vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	switch op {
	case Count:
		return float64(len(vals))
	case Sum:
		return sum(vals)
	case Mean:
		return sum(vals) / float64(len(vals))
	case Median:
		return median(vals)
	case Max:
		mx, _ := extrema(vals)
		return mx
	case Min:
		_, mn := extrema(vals)
		return mn
	case Range:
		mx, mn := extrema(vals)
		return mx - mn
	default:
		panic(fmt.Sprintf("features: unknown op %d", op))
	}
}

// weights returns the inverse-transformation share each member unit
// receives from the spec's coefficient. The slice is aligned with the
// member list.
func weights(op Op, vals []float64) []float64 {
	n := len(vals)
	w := make([]float64, n)
	if n == 0 {
		return w
	}
	switch op {
	case Count, Sum:
		for i := range w {
			w[i] = 1
		}
	case Mean:
		for i := range w {
			w[i] = 1 / float64(n)
		}
	case Median:
		order := sortedOrder(vals)
		if n%2 == 1 {
			w[order[n/2]] = 1
		} else {
			w[order[n/2-1]] = 0.5
			w[order[n/2]] = 0.5
		}
	case Max:
		w[argMax(vals)] = 1
	case Min:
		w[argMin(vals)] = 1
	case Range:
		w[argMax(vals)] += 1
		w[argMin(vals)] -= 1
	}
	return w
}

// Impacts computes the per-unit impact scores: for each unit, the average
// over all features it feeds of coef[k] * share, multiplied by the unit's
// relevance score. Positive impacts push toward match, negative toward
// non-match. coef must have length Dim().
func (s *Space) Impacts(us []units.Unit, scores []float64, coef []float64) []float64 {
	if len(coef) != len(s.Specs) {
		panic(fmt.Sprintf("features: %d coefficients for %d features", len(coef), len(s.Specs)))
	}
	accum := make([]float64, len(us))
	nFeat := make([]int, len(us))
	for k, spec := range s.Specs {
		m := s.members(spec, us, scores)
		if len(m) == 0 {
			continue
		}
		vals := make([]float64, len(m))
		for j, i := range m {
			vals[j] = scores[i]
		}
		w := weights(spec.Op, vals)
		for j, i := range m {
			if w[j] == 0 {
				continue
			}
			accum[i] += coef[k] * w[j]
			nFeat[i]++
		}
	}
	out := make([]float64, len(us))
	for i := range out {
		if nFeat[i] == 0 {
			continue
		}
		out[i] = scores[i] * accum[i] / float64(nFeat[i])
	}
	return out
}

func sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

func median(vals []float64) float64 {
	order := sortedOrder(vals)
	n := len(order)
	if n%2 == 1 {
		return vals[order[n/2]]
	}
	return (vals[order[n/2-1]] + vals[order[n/2]]) / 2
}

func extrema(vals []float64) (mx, mn float64) {
	mx, mn = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v > mx {
			mx = v
		}
		if v < mn {
			mn = v
		}
	}
	return mx, mn
}

func argMax(vals []float64) int {
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return best
}

func argMin(vals []float64) int {
	best := 0
	for i, v := range vals {
		if v < vals[best] {
			best = i
		}
	}
	return best
}

func sortedOrder(vals []float64) []int {
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
	return order
}
