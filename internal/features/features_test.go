package features

import (
	"math"
	"math/rand"
	"testing"

	"wym/internal/units"
)

// twoAttrUnits builds a small unit list spanning two attributes with both
// kinds, aligned with hand-picked relevance scores.
func twoAttrUnits() ([]units.Unit, []float64) {
	us := []units.Unit{
		{Kind: units.Paired, Left: 0, Right: 0, Attr: 0},         // score 0.8
		{Kind: units.Paired, Left: 1, Right: 1, Attr: 0},         // score 0.4
		{Kind: units.UnpairedLeft, Left: 2, Right: -1, Attr: 0},  // score -0.5
		{Kind: units.Paired, Left: 3, Right: 2, Attr: 1},         // score 0.9
		{Kind: units.UnpairedRight, Left: -1, Right: 3, Attr: 1}, // score -0.7
	}
	scores := []float64{0.8, 0.4, -0.5, 0.9, -0.7}
	return us, scores
}

func specIndex(s *Space, scope int, f Filter, op Op) int {
	for k, spec := range s.Specs {
		if spec.Scope == scope && spec.Filter == f && spec.Op == op {
			return k
		}
	}
	return -1
}

func TestNewSpaceShape(t *testing.T) {
	s := NewSpace(3)
	// 3 attrs × 2 filters × 5 ops + 3 record filters × 7 ops = 30 + 21.
	if s.Dim() != 51 {
		t.Fatalf("dim = %d, want 51", s.Dim())
	}
	names := map[string]bool{}
	for _, spec := range s.Specs {
		if names[spec.Name()] {
			t.Fatalf("duplicate feature %q", spec.Name())
		}
		names[spec.Name()] = true
	}
}

func TestNewSimplifiedSpace(t *testing.T) {
	s := NewSimplifiedSpace()
	if s.Dim() != 6 {
		t.Fatalf("simplified dim = %d, want 6", s.Dim())
	}
}

func TestVectorValues(t *testing.T) {
	s := NewSpace(2)
	us, scores := twoAttrUnits()
	v := s.Vector(us, scores)

	check := func(scope int, f Filter, op Op, want float64) {
		t.Helper()
		k := specIndex(s, scope, f, op)
		if k < 0 {
			t.Fatalf("missing spec %d/%v/%v", scope, f, op)
		}
		if math.Abs(v[k]-want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", s.Specs[k].Name(), v[k], want)
		}
	}
	check(0, Paired, Count, 2)
	check(0, Paired, Sum, 1.2)
	check(0, Paired, Mean, 0.6)
	check(0, Paired, Max, 0.8)
	check(0, Paired, Min, 0.4)
	check(0, Unpaired, Count, 1)
	check(0, Unpaired, Mean, -0.5)
	check(1, Paired, Count, 1)
	check(RecordScope, All, Count, 5)
	check(RecordScope, All, Median, 0.4)
	check(RecordScope, Positive, Count, 3)
	check(RecordScope, Positive, Min, 0.4)
	check(RecordScope, Negative, Count, 2)
	check(RecordScope, Negative, Max, -0.5)
	check(RecordScope, All, Range, 0.9-(-0.7))
}

func TestVectorEmptyScopesAreZero(t *testing.T) {
	s := NewSpace(2)
	us := []units.Unit{{Kind: units.Paired, Attr: 0}}
	v := s.Vector(us, []float64{0.5})
	k := specIndex(s, 1, Paired, Mean)
	if v[k] != 0 {
		t.Fatalf("empty attribute mean = %v, want 0", v[k])
	}
	k = specIndex(s, RecordScope, Negative, Count)
	if v[k] != 0 {
		t.Fatalf("empty negative count = %v, want 0", v[k])
	}
}

func TestVectorPanicsOnMisalignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace(1).Vector([]units.Unit{{}}, nil)
}

func TestWeightsMean(t *testing.T) {
	w := weights(Mean, []float64{0.2, 0.4, 0.6})
	for _, x := range w {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Fatalf("mean weights = %v", w)
		}
	}
}

func TestWeightsExtrema(t *testing.T) {
	vals := []float64{0.2, 0.9, -0.3}
	w := weights(Max, vals)
	if w[1] != 1 || w[0] != 0 || w[2] != 0 {
		t.Fatalf("max weights = %v", w)
	}
	w = weights(Min, vals)
	if w[2] != 1 {
		t.Fatalf("min weights = %v", w)
	}
	w = weights(Range, vals)
	if w[1] != 1 || w[2] != -1 {
		t.Fatalf("range weights = %v", w)
	}
}

func TestWeightsMedian(t *testing.T) {
	w := weights(Median, []float64{0.5, 0.1, 0.9})
	if w[0] != 1 || w[1] != 0 || w[2] != 0 {
		t.Fatalf("odd median weights = %v", w)
	}
	w = weights(Median, []float64{0.1, 0.9, 0.5, 0.7})
	// middle two of sorted {0.1, 0.5, 0.7, 0.9} are 0.5 and 0.7.
	if w[2] != 0.5 || w[3] != 0.5 {
		t.Fatalf("even median weights = %v", w)
	}
}

func TestWeightsEmptyAndCount(t *testing.T) {
	if len(weights(Mean, nil)) != 0 {
		t.Fatal("empty weights should be empty")
	}
	w := weights(Count, []float64{1, 2})
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("count weights = %v", w)
	}
}

func TestImpactsSigns(t *testing.T) {
	// With a single mean-over-all feature, each unit's impact must be
	// score * coef/N, carrying the relevance score's sign.
	s := &Space{Specs: []Spec{{Scope: RecordScope, Filter: All, Op: Mean}}}
	us, scores := twoAttrUnits()
	imp := s.Impacts(us, scores, []float64{2.0})
	for i := range us {
		want := scores[i] * 2.0 / 5.0
		if math.Abs(imp[i]-want) > 1e-12 {
			t.Fatalf("impact %d = %v, want %v", i, imp[i], want)
		}
	}
}

func TestImpactsAveragesAcrossFeatures(t *testing.T) {
	s := &Space{Specs: []Spec{
		{Scope: RecordScope, Filter: All, Op: Sum},
		{Scope: RecordScope, Filter: All, Op: Count},
	}}
	us := []units.Unit{{Kind: units.Paired, Attr: 0}}
	scores := []float64{0.5}
	imp := s.Impacts(us, scores, []float64{1.0, 3.0})
	// Unit feeds both features with weight 1: mean share (1+3)/2 = 2.
	if math.Abs(imp[0]-0.5*2) > 1e-12 {
		t.Fatalf("impact = %v, want 1.0", imp[0])
	}
}

func TestImpactsMaxOnlyHitsArgmax(t *testing.T) {
	s := &Space{Specs: []Spec{{Scope: RecordScope, Filter: All, Op: Max}}}
	us, scores := twoAttrUnits()
	imp := s.Impacts(us, scores, []float64{1.0})
	for i := range us {
		if i == 3 { // score 0.9 is the max
			if imp[i] == 0 {
				t.Fatal("argmax unit received no impact")
			}
			continue
		}
		if imp[i] != 0 {
			t.Fatalf("non-argmax unit %d received impact %v", i, imp[i])
		}
	}
}

func TestImpactsPanicsOnBadCoefLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace(1).Impacts(nil, nil, []float64{1})
}

func TestImpactsFullSpaceProperty(t *testing.T) {
	// For random scores and coefficients the impacts must be finite, and
	// zero-relevance units must get zero impact.
	s := NewSpace(2)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		us, _ := twoAttrUnits()
		scores := make([]float64, len(us))
		for i := range scores {
			scores[i] = rng.Float64()*2 - 1
		}
		scores[0] = 0
		coef := make([]float64, s.Dim())
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		imp := s.Impacts(us, scores, coef)
		if imp[0] != 0 {
			t.Fatalf("zero-relevance unit got impact %v", imp[0])
		}
		for i, v := range imp {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("impact %d not finite: %v", i, v)
			}
		}
	}
}

func TestSpecName(t *testing.T) {
	spec := Spec{Scope: 1, Filter: Paired, Op: Mean}
	if spec.Name() != "attr1.paired.mean" {
		t.Fatalf("Name = %q", spec.Name())
	}
	spec = Spec{Scope: RecordScope, Filter: Negative, Op: Range}
	if spec.Name() != "record.neg.range" {
		t.Fatalf("Name = %q", spec.Name())
	}
}

func TestVectorPermutationInvariance(t *testing.T) {
	// Every engineered feature is a permutation-invariant statistic: the
	// vector must not depend on the order of the decision units.
	s := NewSpace(2)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		us, _ := twoAttrUnits()
		scores := make([]float64, len(us))
		for i := range scores {
			scores[i] = rng.Float64()*2 - 1
		}
		base := s.Vector(us, scores)

		perm := rng.Perm(len(us))
		pu := make([]units.Unit, len(us))
		ps := make([]float64, len(us))
		for i, j := range perm {
			pu[i], ps[i] = us[j], scores[j]
		}
		got := s.Vector(pu, ps)
		for k := range base {
			if math.Abs(base[k]-got[k]) > 1e-12 {
				t.Fatalf("trial %d: feature %s changed under permutation: %v vs %v",
					trial, s.Specs[k].Name(), base[k], got[k])
			}
		}
	}
}

func TestImpactsPermutationEquivariance(t *testing.T) {
	// Permuting the units permutes the impacts identically.
	s := NewSpace(2)
	rng := rand.New(rand.NewSource(78))
	us, _ := twoAttrUnits()
	scores := make([]float64, len(us))
	for i := range scores {
		scores[i] = rng.Float64()*2 - 1
	}
	coef := make([]float64, s.Dim())
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	base := s.Impacts(us, scores, coef)

	perm := rng.Perm(len(us))
	pu := make([]units.Unit, len(us))
	ps := make([]float64, len(us))
	for i, j := range perm {
		pu[i], ps[i] = us[j], scores[j]
	}
	got := s.Impacts(pu, ps, coef)
	for i, j := range perm {
		if math.Abs(got[i]-base[j]) > 1e-12 {
			t.Fatalf("impact not equivariant at %d: %v vs %v", i, got[i], base[j])
		}
	}
}
