package rules

import (
	"strings"
	"testing"

	"wym/internal/data"
	"wym/internal/pipeline"
	"wym/internal/units"
)

func pairWith(left, right string) data.Pair {
	return data.Pair{Left: data.Entity{left}, Right: data.Entity{right}}
}

func explanation(pred int, proba float64, us ...pipeline.UnitExplanation) pipeline.Explanation {
	return pipeline.Explanation{Prediction: pred, Proba: proba, Units: us}
}

func TestCodeConflict(t *testing.T) {
	rule := CodeConflict{}
	tests := []struct {
		name string
		p    data.Pair
		want Verdict
	}{
		{"conflicting codes", pairWith("camera ab123x", "camera cd456y"), ForceNonMatch},
		{"agreeing code", pairWith("camera ab123x", "cam ab123x"), Keep},
		{"one agreeing among several", pairWith("kit ab123x cd456y", "kit cd456y"), Keep},
		{"no codes left", pairWith("camera", "camera cd456y"), Keep},
		{"no codes at all", pairWith("camera", "camera"), Keep},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, reason := rule.Evaluate(tc.p, pipeline.Explanation{})
			if got != tc.want {
				t.Fatalf("verdict = %v (%s), want %v", got, reason, tc.want)
			}
			if got != Keep && reason == "" {
				t.Fatal("override without a reason")
			}
		})
	}
}

func TestCodeAgreement(t *testing.T) {
	rule := CodeAgreement{}
	p := pairWith("camera ab123x", "cam ab123x")
	// Undecided model, agreeing codes: force the match.
	if v, reason := rule.Evaluate(p, explanation(data.NonMatch, 0.4)); v != ForceMatch {
		t.Fatalf("verdict = %v (%s)", v, reason)
	}
	// Confident model: keep.
	if v, _ := rule.Evaluate(p, explanation(data.NonMatch, 0.05)); v != Keep {
		t.Fatal("confident prediction should not be overridden")
	}
	// Conflicting extra code: keep.
	conflict := pairWith("camera ab123x zz999z", "cam ab123x")
	if v, _ := rule.Evaluate(conflict, explanation(data.NonMatch, 0.4)); v != Keep {
		t.Fatal("conflicting code should block the agreement rule")
	}
	// No codes: keep.
	if v, _ := rule.Evaluate(pairWith("camera", "cam"), explanation(data.NonMatch, 0.4)); v != Keep {
		t.Fatal("no codes should keep")
	}
}

func TestAttributeMismatch(t *testing.T) {
	rule := AttributeMismatch{Attr: 1, AttrName: "brand"}
	paired := pipeline.UnitExplanation{Kind: units.Paired, Attr: 1, Left: "sony", Right: "sony"}
	unpairedL := pipeline.UnitExplanation{Kind: units.UnpairedLeft, Attr: 1, Left: "sony"}
	unpairedR := pipeline.UnitExplanation{Kind: units.UnpairedRight, Attr: 1, Right: "nikon"}
	otherAttr := pipeline.UnitExplanation{Kind: units.UnpairedLeft, Attr: 0, Left: "camera"}

	if v, _ := rule.Evaluate(data.Pair{}, explanation(1, 0.9, paired, unpairedL)); v != Keep {
		t.Fatal("paired unit in the attribute should keep")
	}
	v, reason := rule.Evaluate(data.Pair{}, explanation(1, 0.9, unpairedL, unpairedR, otherAttr))
	if v != ForceNonMatch {
		t.Fatalf("all-unpaired attribute should force non-match, got %v", v)
	}
	if !strings.Contains(reason, "brand") {
		t.Fatalf("reason should name the attribute: %q", reason)
	}
	if v, _ := rule.Evaluate(data.Pair{}, explanation(1, 0.9, otherAttr)); v != Keep {
		t.Fatal("attribute with no units should keep")
	}
}

func TestMinPairedRatio(t *testing.T) {
	rule := MinPairedRatio{Ratio: 0.5}
	paired := pipeline.UnitExplanation{Kind: units.Paired}
	unpaired := pipeline.UnitExplanation{Kind: units.UnpairedLeft}
	if v, _ := rule.Evaluate(data.Pair{}, explanation(1, 0.9, paired, unpaired)); v != Keep {
		t.Fatal("50% paired should keep at floor 50%")
	}
	if v, _ := rule.Evaluate(data.Pair{}, explanation(1, 0.9, paired, unpaired, unpaired)); v != ForceNonMatch {
		t.Fatal("33% paired should force non-match at floor 50%")
	}
	if v, _ := rule.Evaluate(data.Pair{}, explanation(1, 0.9)); v != Keep {
		t.Fatal("empty unit list should keep")
	}
	if v, _ := (MinPairedRatio{}).Evaluate(data.Pair{}, explanation(1, 0.9, unpaired)); v != Keep {
		t.Fatal("zero ratio should disable the rule")
	}
}

func TestEngineOrderAndOverride(t *testing.T) {
	p := pairWith("camera ab123x", "camera cd456y")
	ex := explanation(data.Match, 0.9)
	engine := NewEngine(CodeConflict{}, MinPairedRatio{Ratio: 0.9})
	d := engine.Apply(p, ex)
	if !d.Overridden || d.Prediction != data.NonMatch || d.Rule != "code-conflict" {
		t.Fatalf("decision = %+v", d)
	}
	// First rule wins: the ratio rule never fires.
	if d.Reason == "" || !strings.Contains(d.Reason, "codes disagree") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestEngineKeepsModelDecision(t *testing.T) {
	p := pairWith("camera ab123x", "cam ab123x")
	ex := explanation(data.Match, 0.9)
	d := NewEngine(CodeConflict{}).Apply(p, ex)
	if d.Overridden || d.Prediction != data.Match || d.Rule != "" {
		t.Fatalf("decision = %+v", d)
	}
}

func TestEngineAgreeingVerdictNotFlaggedAsOverride(t *testing.T) {
	// A rule confirming the model's decision records the rule but not an
	// override.
	p := pairWith("camera ab123x", "camera cd456y")
	ex := explanation(data.NonMatch, 0.1)
	d := NewEngine(CodeConflict{}).Apply(p, ex)
	if d.Overridden {
		t.Fatalf("agreeing verdict flagged as override: %+v", d)
	}
	if d.Rule != "code-conflict" {
		t.Fatalf("rule not recorded: %+v", d)
	}
}
