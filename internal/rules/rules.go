// Package rules implements the paper's first future-work direction:
// injecting external knowledge as rules over decision units (§6). A rule
// inspects a record's explained units — token texts, kinds, attributes,
// relevance and impact scores — and may override the matcher's decision
// with a human-readable reason. Overrides stay interpretable by
// construction: every forced decision names the rule and the units that
// triggered it.
package rules

import (
	"fmt"
	"strings"

	"wym/internal/data"
	"wym/internal/pipeline"
	"wym/internal/tokenize"
	"wym/internal/units"
)

// Verdict is a rule's outcome for one record.
type Verdict int

// Verdicts.
const (
	Keep Verdict = iota // defer to the model (or to later rules)
	ForceMatch
	ForceNonMatch
)

// Rule evaluates one explained record.
type Rule interface {
	// Name identifies the rule in decisions and logs.
	Name() string
	// Evaluate returns a verdict and, when not Keep, a reason mentioning
	// the evidence.
	Evaluate(p data.Pair, ex pipeline.Explanation) (Verdict, string)
}

// Decision is the engine's final output for one record.
type Decision struct {
	Prediction int
	Proba      float64
	// Overridden reports that a rule changed the model's prediction;
	// Rule and Reason document it.
	Overridden bool
	Rule       string
	Reason     string
}

// Engine applies rules in order; the first non-Keep verdict wins.
type Engine struct {
	Rules []Rule
}

// NewEngine builds an engine over the given rules.
func NewEngine(rs ...Rule) *Engine { return &Engine{Rules: rs} }

// Apply combines the model's explanation with the rules.
func (e *Engine) Apply(p data.Pair, ex pipeline.Explanation) Decision {
	d := Decision{Prediction: ex.Prediction, Proba: ex.Proba}
	for _, r := range e.Rules {
		verdict, reason := r.Evaluate(p, ex)
		if verdict == Keep {
			continue
		}
		forced := data.NonMatch
		if verdict == ForceMatch {
			forced = data.Match
		}
		d.Rule = r.Name()
		d.Reason = reason
		if forced != ex.Prediction {
			d.Overridden = true
			d.Prediction = forced
		}
		return d
	}
	return d
}

// CodeConflict forces a non-match when both descriptions contain
// product-code tokens but none agree exactly — the domain knowledge of the
// paper's §5.1.1 error analysis, expressed as a rule instead of a pairing
// constraint.
type CodeConflict struct{}

// Name implements Rule.
func (CodeConflict) Name() string { return "code-conflict" }

// Evaluate implements Rule.
func (CodeConflict) Evaluate(p data.Pair, ex pipeline.Explanation) (Verdict, string) {
	left, right := codeTokens(p)
	if len(left) == 0 || len(right) == 0 {
		return Keep, ""
	}
	for c := range left {
		if right[c] {
			return Keep, "" // at least one agreeing code
		}
	}
	return ForceNonMatch, fmt.Sprintf("codes disagree: %s vs %s",
		joinKeys(left), joinKeys(right))
}

// CodeAgreement forces a match when the descriptions share an exact code
// token, no code conflicts exist, and the model was undecided (probability
// within the Band around 0.5). Codes are near-unique identifiers, so exact
// agreement outweighs weak residual evidence.
type CodeAgreement struct {
	// Band is the half-width of the undecided probability region
	// (default 0.2: probabilities in [0.3, 0.7) can be overridden).
	Band float64
}

// Name implements Rule.
func (CodeAgreement) Name() string { return "code-agreement" }

// Evaluate implements Rule.
func (r CodeAgreement) Evaluate(p data.Pair, ex pipeline.Explanation) (Verdict, string) {
	band := r.Band
	if band <= 0 {
		band = 0.2
	}
	if ex.Proba < 0.5-band || ex.Proba >= 0.5+band {
		return Keep, "" // the model is confident; don't second-guess it
	}
	left, right := codeTokens(p)
	var agreed []string
	for c := range left {
		if right[c] {
			agreed = append(agreed, c)
		} else {
			return Keep, "" // conflicting code present: stay out
		}
	}
	for c := range right {
		if !left[c] {
			return Keep, ""
		}
	}
	if len(agreed) == 0 {
		return Keep, ""
	}
	return ForceMatch, "shared product code(s): " + strings.Join(agreed, ", ")
}

// AttributeMismatch forces a non-match when a designated attribute (e.g. a
// primary-key-like column) produced no paired decision unit at all.
type AttributeMismatch struct {
	Attr     int
	AttrName string // used in the reason; optional
}

// Name implements Rule.
func (r AttributeMismatch) Name() string { return "attribute-mismatch" }

// Evaluate implements Rule.
func (r AttributeMismatch) Evaluate(_ data.Pair, ex pipeline.Explanation) (Verdict, string) {
	var sawAttr bool
	for _, u := range ex.Units {
		if u.Attr != r.Attr {
			continue
		}
		sawAttr = true
		if u.Kind == units.Paired {
			return Keep, ""
		}
	}
	if !sawAttr {
		return Keep, "" // attribute empty on both sides: no evidence
	}
	name := r.AttrName
	if name == "" {
		name = fmt.Sprintf("attribute %d", r.Attr)
	}
	return ForceNonMatch, "no token of " + name + " could be paired"
}

// MinPairedRatio forces a non-match when fewer than Ratio of the record's
// units are paired — a conservative guard for screening pipelines where
// false matches are expensive.
type MinPairedRatio struct {
	Ratio float64 // e.g. 0.25
}

// Name implements Rule.
func (MinPairedRatio) Name() string { return "min-paired-ratio" }

// Evaluate implements Rule.
func (r MinPairedRatio) Evaluate(_ data.Pair, ex pipeline.Explanation) (Verdict, string) {
	if len(ex.Units) == 0 || r.Ratio <= 0 {
		return Keep, ""
	}
	var paired int
	for _, u := range ex.Units {
		if u.Kind == units.Paired {
			paired++
		}
	}
	ratio := float64(paired) / float64(len(ex.Units))
	if ratio >= r.Ratio {
		return Keep, ""
	}
	return ForceNonMatch, fmt.Sprintf("only %.0f%% of decision units are paired (floor %.0f%%)",
		100*ratio, 100*r.Ratio)
}

// codeTokens collects the code-like tokens of each description.
func codeTokens(p data.Pair) (left, right map[string]bool) {
	collect := func(e data.Entity) map[string]bool {
		out := map[string]bool{}
		for _, v := range e {
			for _, t := range tokenize.SplitWords(v) {
				if tokenize.LooksLikeCode(t) {
					out[t] = true
				}
			}
		}
		return out
	}
	return collect(p.Left), collect(p.Right)
}

func joinKeys(m map[string]bool) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	// Small sets; insertion sort keeps output deterministic.
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return strings.Join(ks, ",")
}
