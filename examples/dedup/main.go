// Dedup: an end-to-end deployment scenario — two vendor catalogues are
// blocked into candidate pairs, matched with a trained WYM system, and the
// decisions are screened by a rule engine that injects domain knowledge
// (the paper's §6 future-work direction). Every linked pair ships with an
// auditable explanation. Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"log"

	"wym"
)

func main() {
	// Train on the labeled benchmark data the vendors provided.
	d, ok := wym.DatasetByKey("S-WA", 0.1)
	if !ok {
		log.Fatal("benchmark profile S-WA missing")
	}
	train, valid, _ := d.MustSplit(0.6, 0.2, 1)
	sys, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Two unlabeled catalogues to link (built here from benchmark pairs;
	// in practice these are your tables).
	var left, right []wym.Entity
	source, _ := wym.DatasetByKey("S-WA", 0.02)
	for _, p := range source.Pairs {
		left = append(left, p.Left)
		right = append(right, p.Right)
	}
	fmt.Printf("catalogues: %d x %d entities (%d possible comparisons)\n",
		len(left), len(right), len(left)*len(right))

	// Step 1: blocking cuts the cross product down to candidates.
	bcfg := wym.DefaultBlockingConfig()
	bcfg.MinShared = 2
	cands, err := wym.BlockCandidates(left, right, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := wym.BlockingSummary(left, right, cands)
	fmt.Printf("blocking: %d candidates (%.1f%% of comparisons saved)\n\n",
		stats.Candidates, 100*stats.Reduction)

	// Step 2: match candidates and screen with domain rules.
	engine := wym.NewRuleEngine(
		wym.CodeConflictRule{},
		wym.CodeAgreementRule{},
	)
	var links, overrides int
	for _, p := range wym.BlockPairs(left, right, cands) {
		decision, ex := wym.PredictWithRules(sys, engine, p)
		if decision.Overridden {
			overrides++
			fmt.Printf("rule %q overrode the model on:\n  %v\n  %v\n  reason: %s\n\n",
				decision.Rule, p.Left, p.Right, decision.Reason)
		}
		if decision.Prediction == wym.Match {
			links++
			_ = ex // each link carries its decision-unit explanation
		}
	}
	fmt.Printf("linked %d pairs; rules overrode the model %d time(s)\n", links, overrides)
}
