// Products: catalogue deduplication on the hard Amazon-Google-style
// dataset, reproducing the paper's §5.1.1 error analysis — product codes
// form decision units even when they identify different products — and the
// domain-knowledge fix (CodeExact) that restricts code tokens to
// exact-equality pairing. Run with: go run ./examples/products
package main

import (
	"fmt"
	"log"

	"wym"
)

func main() {
	d, ok := wym.DatasetByKey("S-AG", 0.1)
	if !ok {
		log.Fatal("benchmark profile S-AG missing")
	}
	fmt.Printf("Amazon-Google-style catalogue: %d pairs, %.1f%% matches\n\n",
		d.Size(), 100*d.MatchRate())
	train, valid, test := d.MustSplit(0.6, 0.2, 1)

	// Plain WYM: embeddings decide which tokens pair, including codes.
	plainCfg := wym.DefaultConfig()
	plain, err := wym.Train(train, valid, plainCfg)
	if err != nil {
		log.Fatal(err)
	}
	plainF1 := f1(plain.PredictAll(test), test.Labels())

	// With the domain heuristic: code-like tokens pair only when equal.
	codeCfg := wym.DefaultConfig()
	codeCfg.CodeExact = true
	withCodes, err := wym.Train(train, valid, codeCfg)
	if err != nil {
		log.Fatal(err)
	}
	codeF1 := f1(withCodes.PredictAll(test), test.Labels())

	fmt.Printf("test F1 without the code heuristic: %.3f (classifier %s)\n", plainF1, plain.ModelName())
	fmt.Printf("test F1 with    the code heuristic: %.3f (classifier %s)\n\n", codeF1, withCodes.ModelName())
	fmt.Println("(the paper reports 0.645 -> 0.754 on the textual T-AB dataset for the same fix)")

	// Show a confusable hard negative: same brand and product line,
	// near-identical code. The explanation reveals which units drove each
	// system's decision.
	for _, p := range test.Pairs {
		if p.Label != wym.NonMatch {
			continue
		}
		exPlain := plain.Explain(p)
		exCode := withCodes.Explain(p)
		if exPlain.Prediction == exCode.Prediction {
			continue // look for a record where the heuristic changes the call
		}
		fmt.Println("--- a record where the code heuristic flips the decision ---")
		fmt.Printf("left : %v\nright: %v\ntruth: no match\n\n", p.Left, p.Right)
		fmt.Printf("plain WYM says %s (p=%.2f); top units:\n", verdict(exPlain.Prediction), exPlain.Proba)
		printTop(exPlain, 5)
		fmt.Printf("\ncode-exact WYM says %s (p=%.2f); top units:\n", verdict(exCode.Prediction), exCode.Proba)
		printTop(exCode, 5)
		return
	}
	fmt.Println("(no decision flip in this sample — both systems agree everywhere)")
}

// f1 computes the F1 score with the match class as positive.
func f1(pred, labels []int) float64 {
	var tp, fp, fn int
	for i := range labels {
		switch {
		case pred[i] == 1 && labels[i] == 1:
			tp++
		case pred[i] == 1 && labels[i] == 0:
			fp++
		case pred[i] == 0 && labels[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

func verdict(label int) string {
	if label == wym.Match {
		return "MATCH"
	}
	return "NO MATCH"
}

func printTop(ex wym.Explanation, k int) {
	type scored struct {
		u   wym.UnitExplanation
		mag float64
	}
	var ss []scored
	for _, u := range ex.Units {
		mag := u.Impact
		if mag < 0 {
			mag = -mag
		}
		ss = append(ss, scored{u, mag})
	}
	for i := 0; i < len(ss); i++ {
		for j := i + 1; j < len(ss); j++ {
			if ss[j].mag > ss[i].mag {
				ss[i], ss[j] = ss[j], ss[i]
			}
		}
	}
	if k > len(ss) {
		k = len(ss)
	}
	for _, s := range ss[:k] {
		l, r := s.u.Left, s.u.Right
		if l == "" {
			l = "—"
		}
		if r == "" {
			r = "—"
		}
		fmt.Printf("  %+7.3f  (%s, %s)\n", s.u.Impact, l, r)
	}
}
