// Compare: WYM's intrinsic impact scores next to a post-hoc LIME
// explanation of the same prediction (§5.2 of the paper). The intrinsic
// explanation is exact — it is derived from the classifier's own
// coefficients — while LIME approximates the model with a perturbation
// surrogate. Run with: go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"sort"

	"wym"
)

func main() {
	d, ok := wym.DatasetByKey("S-DA", 0.05)
	if !ok {
		log.Fatal("benchmark profile S-DA missing")
	}
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Pick a matching record to explain both ways.
	var pair wym.Pair
	for _, p := range test.Pairs {
		if p.Label == wym.Match {
			pair = p
			break
		}
	}

	ex := sys.Explain(pair)
	fmt.Printf("record:\n  left : %v\n  right: %v\n", pair.Left, pair.Right)
	fmt.Printf("prediction: %v (p=%.2f)\n\n", ex.Prediction == wym.Match, ex.Proba)

	fmt.Println("intrinsic WYM explanation (decision units, by |impact|):")
	units := append([]wym.UnitExplanation{}, ex.Units...)
	sort.SliceStable(units, func(a, b int) bool {
		return abs(units[a].Impact) > abs(units[b].Impact)
	})
	for i, u := range units {
		if i == 8 {
			break
		}
		l, r := u.Left, u.Right
		if l == "" {
			l = "—"
		}
		if r == "" {
			r = "—"
		}
		fmt.Printf("  %+7.3f  (%s, %s)\n", u.Impact, l, r)
	}

	fmt.Println("\npost-hoc LIME explanation (tokens, by |weight|):")
	proba := func(p wym.Pair) float64 {
		_, pr := sys.Predict(p)
		return pr
	}
	attribs := wym.ExplainLIME(proba, pair, 200, 1)
	sort.SliceStable(attribs, func(a, b int) bool {
		return abs(attribs[a].Weight) > abs(attribs[b].Weight)
	})
	for i, a := range attribs {
		if i == 8 {
			break
		}
		side := "L"
		if a.Side != 0 {
			side = "R"
		}
		fmt.Printf("  %+7.3f  %s:%s\n", a.Weight, side, a.Text)
	}

	fmt.Println("\nNote how LIME weights the two occurrences of the same term")
	fmt.Println("independently, while the decision-unit view groups them — the")
	fmt.Println("usability problem the paper's decision units were designed to fix.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
