// Dirty: matching over a misaligned-schema dataset (the Magellan "dirty"
// variants, e.g. D-WA), where attribute values leak into the wrong column.
// WYM's inter-attribute search space (stage η of Algorithm 1) rescues the
// misplaced tokens; the Jaro–Winkler syntactic variant is run alongside as
// the paper's ablation baseline. Run with: go run ./examples/dirty
package main

import (
	"fmt"
	"log"

	"wym"
)

func main() {
	d, ok := wym.DatasetByKey("D-WA", 0.2)
	if !ok {
		log.Fatal("benchmark profile D-WA missing")
	}
	fmt.Printf("Walmart-Amazon-style dirty dataset: %d pairs, %.1f%% matches\n",
		d.Size(), 100*d.MatchRate())
	fmt.Println("(attribute values are randomly moved into the name column)")
	fmt.Println()

	train, valid, test := d.MustSplit(0.6, 0.2, 1)

	full, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	jwCfg := wym.DefaultConfig()
	jwCfg.Embedding = wym.EmbeddingJaroWinkler
	jw, err := wym.Train(train, valid, jwCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("WYM (embeddings)      test F1: %.3f  [%s]\n", f1(full.PredictAll(test), test.Labels()), full.ModelName())
	fmt.Printf("WYM (Jaro–Winkler)    test F1: %.3f  [%s]\n\n", f1(jw.PredictAll(test), test.Labels()), jw.ModelName())

	// Show a dirty matching record: the brand token sits inside the name
	// on one side but in the manufacturer column on the other — yet the
	// explanation pairs them through the inter-attribute search space.
	for _, p := range test.Pairs {
		if p.Label != wym.Match {
			continue
		}
		if !isDirty(p) {
			continue
		}
		ex := full.Explain(p)
		fmt.Println("--- a dirty match and its explanation ---")
		fmt.Printf("left : %v\nright: %v\npredicted %v (p=%.2f)\n",
			p.Left, p.Right, ex.Prediction == wym.Match, ex.Proba)
		for _, u := range ex.Units {
			l, r := u.Left, u.Right
			if l == "" {
				l = "—"
			}
			if r == "" {
				r = "—"
			}
			fmt.Printf("  %+7.3f  (%s, %s)\n", u.Impact, l, r)
		}
		return
	}
	fmt.Println("(no dirty match found in this test sample)")
}

// isDirty reports whether an attribute value was blanked by the dirty
// transform on either side.
func isDirty(p wym.Pair) bool {
	for _, e := range []wym.Entity{p.Left, p.Right} {
		for _, v := range e[1:] {
			if v == "" {
				return true
			}
		}
	}
	return false
}

// f1 computes the F1 score with the match class as positive.
func f1(pred, labels []int) float64 {
	var tp, fp, fn int
	for i := range labels {
		switch {
		case pred[i] == 1 && labels[i] == 1:
			tp++
		case pred[i] == 1 && labels[i] == 0:
			fp++
		case pred[i] == 0 && labels[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}
