// Quickstart: train WYM on a hand-written product catalog and explain its
// decisions. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"wym"
)

func main() {
	// A tiny catalog-matching dataset over (name, manufacturer, price).
	// In practice you would load one with wym.LoadDataset("pairs.csv").
	d := catalog()
	fmt.Printf("dataset: %d pairs, %.0f%% matches\n\n", d.Size(), 100*d.MatchRate())

	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected interpretable classifier: %s\n", sys.ModelName())

	for _, p := range test.Pairs {
		explainPair(sys, p)
	}

	// The running example of the paper's Table 1: the Microsoft Exchange
	// licenses (a match) and two different digital cameras (a non-match).
	fmt.Println("--- the paper's running example ---")
	explainPair(sys, wym.Pair{
		Left:  wym.Entity{"exch srvr external sa eng 39400416", "microsoft licenses", "42166"},
		Right: wym.Entity{"39400416 exch svr external l sa", "microsoft licenses", "22575"},
	})
	explainPair(sys, wym.Pair{
		Left:  wym.Entity{"digital camera with lens kit dslra200w", "sony", "37.63"},
		Right: wym.Entity{"digital camera leather case 5811", "nikon", "36.11"},
	})
}

func explainPair(sys *wym.System, p wym.Pair) {
	ex := sys.Explain(p)
	verdict := "NO MATCH"
	if ex.Prediction == wym.Match {
		verdict = "MATCH"
	}
	fmt.Printf("%s (p=%.2f)\n  left : %v\n  right: %v\n", verdict, ex.Proba, p.Left, p.Right)

	units := append([]wym.UnitExplanation{}, ex.Units...)
	sort.SliceStable(units, func(a, b int) bool {
		return abs(units[a].Impact) > abs(units[b].Impact)
	})
	for i, u := range units {
		if i == 6 {
			fmt.Printf("  ... %d more units\n", len(units)-i)
			break
		}
		l, r := u.Left, u.Right
		if l == "" {
			l = "—"
		}
		if r == "" {
			r = "—"
		}
		fmt.Printf("  %+7.3f  (%s, %s)\n", u.Impact, l, r)
	}
	fmt.Println()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// catalog builds a small labeled dataset: each matching pair is the same
// product described by two vendors; non-matching pairs are different
// products, several sharing the brand (hard negatives).
func catalog() *wym.Dataset {
	schema := wym.Schema{"name", "manufacturer", "price"}
	type rec struct {
		l, r  wym.Entity
		label int
	}
	var recs []rec
	products := []struct {
		name, brand, price string
		alt                string // second vendor's wording of the same product
	}{
		{"digital camera x100 silver", "fuji", "499.00", "digital camera x-100 slv"},
		{"wireless mouse m720 black", "logitech", "39.99", "cordless mouse m720 blk"},
		{"mechanical keyboard k870", "logitech", "89.50", "mech keyboard k870"},
		{"espresso machine ec685", "delonghi", "189.00", "espresso maker ec685"},
		{"laptop stand aluminum", "rain", "44.90", "notebook stand aluminium"},
		{"usb charger 30w", "anker", "25.00", "usb power charger 30 w"},
		{"noise cancelling headphones wh1000", "sony", "299.0", "noise canceling headset wh-1000"},
		{"portable speaker go2", "jbl", "35.99", "mobile speaker go 2"},
		{"hdmi cable 2m gold", "amazon", "9.99", "hdmi cable gold 2 m"},
		{"4k monitor 27in u2720q", "dell", "519.0", "4k display 27 inch u2720q"},
		{"robot vacuum i7", "irobot", "599.0", "robotic vacuum cleaner i7"},
		{"air fryer xxl", "philips", "149.0", "airfryer xxl"},
	}
	// Matches: both wordings of the same product.
	for _, p := range products {
		recs = append(recs, rec{
			l:     wym.Entity{p.name, p.brand, p.price},
			r:     wym.Entity{p.alt, p.brand, p.price},
			label: wym.Match,
		})
	}
	// Non-matches: different products, including same-brand hard cases.
	for i := range products {
		for j := i + 1; j < len(products); j++ {
			if len(recs) >= 12+36 {
				break
			}
			recs = append(recs, rec{
				l:     wym.Entity{products[i].name, products[i].brand, products[i].price},
				r:     wym.Entity{products[j].alt, products[j].brand, products[j].price},
				label: wym.NonMatch,
			})
		}
	}
	d := &wym.Dataset{Name: "quickstart", Schema: schema}
	for i, r := range recs {
		d.Pairs = append(d.Pairs, wym.Pair{ID: i, Left: r.l, Right: r.r, Label: r.label})
	}
	return d
}
