package wym_test

import (
	"fmt"
	"log"
	"sort"

	"wym"
)

// Train a matcher on labeled pairs and explain a decision. (Compiled as
// documentation; training output depends on the data so it is not asserted.)
func Example() {
	d, _ := wym.DatasetByKey("S-FZ", 1.0) // or wym.LoadDataset("pairs.csv")
	train, valid, test := d.MustSplit(0.6, 0.2, 1)

	sys, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	ex := sys.Explain(test.Pairs[0])
	fmt.Printf("match=%v p=%.2f\n", ex.Prediction == wym.Match, ex.Proba)
	for _, u := range ex.Units {
		fmt.Printf("(%s, %s) impact %+.3f\n", u.Left, u.Right, u.Impact)
	}
}

// Screen model decisions with domain rules (the paper's §6 future work).
func ExamplePredictWithRules() {
	d, _ := wym.DatasetByKey("S-AG", 0.05)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	engine := wym.NewRuleEngine(wym.CodeConflictRule{}, wym.CodeAgreementRule{})
	decision, _ := wym.PredictWithRules(sys, engine, test.Pairs[0])
	if decision.Overridden {
		fmt.Printf("rule %s: %s\n", decision.Rule, decision.Reason)
	}
}

// Block two entity tables into candidate pairs before matching.
func ExampleBlockCandidates() {
	left := []wym.Entity{{"digital camera x100", "fuji"}}
	right := []wym.Entity{{"digital camera x-100", "fuji"}, {"espresso maker", "delonghi"}}

	cfg := wym.DefaultBlockingConfig()
	cfg.MaxDF = 1.0 // tiny tables: keep every token
	cands, err := wym.BlockCandidates(left, right, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		fmt.Printf("%d-%d shares %d tokens\n", c.Left, c.Right, c.Shared)
	}
	// Output:
	// 0-0 shares 3 tokens
}

// Compare the intrinsic impact scores with a post-hoc LIME explanation.
func ExampleExplainLIME() {
	d, _ := wym.DatasetByKey("S-DA", 0.05)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := wym.Train(train, valid, wym.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	proba := func(p wym.Pair) float64 { _, pr := sys.Predict(p); return pr }
	attribs := wym.ExplainLIME(proba, test.Pairs[0], 100, 1)
	sort.Slice(attribs, func(i, j int) bool { return attribs[i].Weight > attribs[j].Weight })
	fmt.Println("strongest match evidence:", attribs[0].Text)
}
