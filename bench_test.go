// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§5). Each bench exercises the corresponding
// experiment driver end-to-end on a reduced slice of the benchmark (two
// datasets, small scale) so `go test -bench=.` regenerates every
// experiment's code path in minutes; cmd/benchmark runs the same drivers
// at full breadth. Key output metrics are attached via b.ReportMetric so
// the shape of the result is visible in the bench log.
package wym

import (
	"sync"
	"testing"

	"wym/internal/eval"
	"wym/internal/experiments"
)

// benchConfig returns a reduced run: the two smallest datasets (S-FZ easy,
// S-BR medium) at a scale that keeps per-iteration work bounded.
func benchConfig() experiments.RunConfig {
	return experiments.RunConfig{
		Scale:         0.05,
		Datasets:      []string{"S-FZ", "S-BR"},
		Seed:          1,
		SampleRecords: 30,
	}
}

func BenchmarkTable2_BenchmarkStats(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure4_UnitDistribution(b *testing.B) {
	cfg := benchConfig()
	var lastNonUnpaired float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lastNonUnpaired = rows[0].NonMatchUnpaired
	}
	b.ReportMetric(lastNonUnpaired, "nonmatch-unpaired/record")
}

func BenchmarkTable3_Effectiveness(b *testing.B) {
	cfg := benchConfig()
	var wymF1 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wymF1 = rows[0].Scores["WYM"]
	}
	b.ReportMetric(wymF1, "WYM-F1")
}

func BenchmarkFigure5_LearningCurves(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-DA"} // the small sets are excluded by design
	cfg.Scale = 0.03
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 || len(series[0].Points) == 0 {
			b.Fatal("empty learning curve")
		}
	}
}

func BenchmarkTable4_Ablations(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	var full float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		full = rows[0].Scores["WYM"]
	}
	b.ReportMetric(full, "WYM-F1")
}

func BenchmarkTable5_ClassifierPool(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows[0].Scores) != 10 {
			b.Fatalf("classifiers = %d", len(rows[0].Scores))
		}
	}
}

func BenchmarkFigure6_Conciseness(b *testing.B) {
	cfg := benchConfig()
	var top20 float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range series[0].Points {
			if p.Fraction == 0.20 {
				top20 = p.Share
			}
		}
	}
	b.ReportMetric(top20, "top20%-impact-share")
}

func BenchmarkFigure7_Sufficiency(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	cfg.SampleRecords = 20
	var wymTop1 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wymTop1 = rows[0].Acc["WYM"][0]
	}
	b.ReportMetric(wymTop1, "WYM-posthoc-acc@1")
}

func BenchmarkFigure8_Removal(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	var morfDrop float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		morf := rows[0].F1[eval.MoRF]
		morfDrop = rows[0].Baseline - morf[len(morf)-1]
	}
	b.ReportMetric(morfDrop, "MoRF-F1-drop@5")
}

func BenchmarkFigure9_LandmarkCorrelation(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	cfg.SampleRecords = 20
	var matchCorr float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		matchCorr = rows[0].MatchMean
	}
	b.ReportMetric(matchCorr, "match-mean-pearson")
}

func BenchmarkSection53_Throughput(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	cfg.SampleRecords = 30
	var explainRate float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Section53(cfg)
		if err != nil {
			b.Fatal(err)
		}
		explainRate = rows[0].ExplainPerSecond
	}
	b.ReportMetric(explainRate, "explanations/sec")
}

func BenchmarkSection54_UserStudy(b *testing.B) {
	cfg := benchConfig()
	var kappa float64
	for i := 0; i < b.N; i++ {
		kappa = experiments.Section54(cfg).Kappa
	}
	b.ReportMetric(kappa, "fleiss-kappa")
}

// benchSystem trains one full-size S-FZ system shared by the hot-path
// benchmarks below (training once keeps `go test -bench` runs fast).
func benchSystem(b *testing.B) (*System, *Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		d, _ := DatasetByKey("S-FZ", 1.0)
		train, valid, test := d.MustSplit(0.6, 0.2, 1)
		sys, err := Train(train, valid, DefaultConfig())
		if err != nil {
			benchErr = err
			return
		}
		benchSys, benchTest = sys, test
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSys, benchTest
}

var (
	benchOnce sync.Once
	benchSys  *System
	benchTest *Dataset
	benchErr  error
)

// BenchmarkPredict measures single-record prediction latency on a trained
// system — the deployment-relevant number behind §5.3.
func BenchmarkPredict(b *testing.B) {
	sys, test := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Predict(test.Pairs[i%test.Size()])
	}
}

// BenchmarkExplain measures single-record explanation latency.
func BenchmarkExplain(b *testing.B) {
	sys, test := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Explain(test.Pairs[i%test.Size()])
	}
}

// BenchmarkProcessAll measures batch decision-unit generation over the test
// split — the path that dominates training (§5.3) and bulk inference. The
// committed BENCH_baseline.json tracks its trajectory across PRs.
func BenchmarkProcessAll(b *testing.B) {
	sys, test := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ProcessAll(test)
	}
}

// BenchmarkAblationThresholds regenerates the θ/η/ε design-choice sweep
// (DESIGN.md ablations beyond the paper's Table 4).
func BenchmarkAblationThresholds(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationThresholds(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationContext regenerates the context-mixing γ sweep.
func BenchmarkAblationContext(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationContext(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionRules regenerates the §6 future-work experiment:
// decision-unit rules screening the matcher.
func BenchmarkExtensionRules(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"S-FZ"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionRules(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
