package wym

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"wym/internal/nn"
	"wym/internal/relevance"
)

// testConfig shrinks the scorer network so the public-API tests run fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ScorerNN = relevance.NNConfig{
		Hidden: []int{32, 16},
		Train:  nn.Config{Epochs: 15, BatchSize: 64, LR: 1e-3, Seed: 1},
		Seed:   1,
	}
	cfg.MaxFineTunePairs = 200
	return cfg
}

func TestPublicAPIEndToEnd(t *testing.T) {
	d, ok := DatasetByKey("S-FZ", 1.0)
	if !ok {
		t.Fatal("S-FZ profile missing")
	}
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := Train(train, valid, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var correct int
	for _, p := range test.Pairs {
		label, proba := sys.Predict(p)
		if proba < 0 || proba > 1 || math.IsNaN(proba) {
			t.Fatalf("proba = %v", proba)
		}
		if label == p.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Size()); acc < 0.9 {
		t.Fatalf("accuracy = %v", acc)
	}
	ex := sys.Explain(test.Pairs[0])
	if len(ex.Units) == 0 {
		t.Fatal("empty explanation")
	}
}

func TestBenchmarkProfiles(t *testing.T) {
	profiles := BenchmarkProfiles()
	if len(profiles) != 12 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if _, ok := DatasetByKey("NOPE", 1.0); ok {
		t.Fatal("unknown key should fail")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d, _ := DatasetByKey("S-BR", 1.0)
	path := filepath.Join(t.TempDir(), "beer.csv")
	if err := SaveDataset(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != d.Size() || got.MatchRate() != d.MatchRate() {
		t.Fatalf("round trip changed the dataset: %d/%v vs %d/%v",
			got.Size(), got.MatchRate(), d.Size(), d.MatchRate())
	}
}

func TestPaperThresholds(t *testing.T) {
	if PaperThresholds.Theta != 0.6 || PaperThresholds.Eta != 0.65 || PaperThresholds.Epsilon != 0.7 {
		t.Fatalf("paper thresholds = %+v", PaperThresholds)
	}
}

func TestPublicBlockingAPI(t *testing.T) {
	left := []Entity{{"camera md0001", "sony"}, {"laptop md0002", "dell"}}
	right := []Entity{{"camera pro md0001", "sony"}, {"printer md0009", "hp"}}
	cfg := DefaultBlockingConfig()
	cfg.MaxDF = 1.0
	cands, err := BlockCandidates(left, right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	pairs := BlockPairs(left, right, cands)
	if len(pairs) != len(cands) {
		t.Fatalf("pairs = %d, cands = %d", len(pairs), len(cands))
	}
	stats := BlockingSummary(left, right, cands)
	if stats.Candidates != len(cands) || stats.LeftSize != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPublicRulesAPI(t *testing.T) {
	d, _ := DatasetByKey("S-FZ", 1.0)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := Train(train, valid, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	engine := NewRuleEngine(CodeConflictRule{}, MinPairedRatioRule{Ratio: 0.1})
	for _, p := range test.Pairs[:10] {
		decision, ex := PredictWithRules(sys, engine, p)
		if decision.Proba != ex.Proba {
			t.Fatal("decision lost the model probability")
		}
		if decision.Overridden && decision.Reason == "" {
			t.Fatal("override without reason")
		}
	}
}

func TestPublicLIMEAPI(t *testing.T) {
	d, _ := DatasetByKey("S-FZ", 1.0)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := Train(train, valid, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	proba := func(p Pair) float64 { _, pr := sys.Predict(p); return pr }
	attribs := ExplainLIME(proba, test.Pairs[0], 40, 1)
	if len(attribs) == 0 {
		t.Fatal("no attributions")
	}
	for _, a := range attribs {
		if a.Text == "" {
			t.Fatalf("empty token in attribution: %+v", a)
		}
	}
}

func TestSystemPersistenceViaPublicAPI(t *testing.T) {
	d, _ := DatasetByKey("S-BR", 1.0)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := Train(train, valid, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range test.Pairs {
		l1, _ := sys.Predict(p)
		l2, _ := loaded.Predict(p)
		if l1 != l2 {
			t.Fatal("loaded system diverged")
		}
	}
}

func TestModelRefSwap(t *testing.T) {
	a := &System{}
	b := &System{}
	ref := NewModelRef(a)
	if ref.Get() != a {
		t.Fatal("Get returned a different system than stored")
	}
	if old := ref.Set(b); old != a {
		t.Fatal("Set did not return the replaced system")
	}
	if ref.Get() != b {
		t.Fatal("Set did not publish the new system")
	}
	// Concurrent readers vs one writer; run under -race in `make check`.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			ref.Set(a)
			ref.Set(b)
		}
	}()
	for i := 0; i < 1000; i++ {
		if sys := ref.Get(); sys != a && sys != b {
			t.Fatal("Get observed a torn value")
		}
	}
	<-done
}

// TestRecordLevelAPI pins the facade's Process/PredictRecord/
// ExplainRecord contract: processing a pair once and reusing the record
// must reproduce exactly what the one-shot Predict and Explain paths
// return, both via the System and via its Engine.
func TestRecordLevelAPI(t *testing.T) {
	d, _ := DatasetByKey("S-FZ", 1.0)
	train, valid, test := d.MustSplit(0.6, 0.2, 1)
	sys, err := Train(train, valid, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Engine()
	if eng == nil {
		t.Fatal("trained system has no engine")
	}
	for _, p := range test.Pairs[:10] {
		wantLabel, wantProba := sys.Predict(p)
		wantEx := sys.Explain(p)

		rec := sys.Process(p)
		if gotLabel, gotProba := sys.PredictRecord(rec); gotLabel != wantLabel || gotProba != wantProba {
			t.Fatalf("PredictRecord = (%d, %v), Predict = (%d, %v)", gotLabel, gotProba, wantLabel, wantProba)
		}
		gotEx := sys.ExplainRecord(rec)
		if gotEx.Prediction != wantEx.Prediction || gotEx.Proba != wantEx.Proba || len(gotEx.Units) != len(wantEx.Units) {
			t.Fatalf("ExplainRecord = %+v, Explain = %+v", gotEx, wantEx)
		}
		for i := range gotEx.Units {
			if gotEx.Units[i] != wantEx.Units[i] {
				t.Fatalf("unit %d: ExplainRecord = %+v, Explain = %+v", i, gotEx.Units[i], wantEx.Units[i])
			}
		}

		// The engine surface is the same instantiation.
		if gotLabel, gotProba := eng.Predict(p); gotLabel != wantLabel || gotProba != wantProba {
			t.Fatalf("Engine.Predict = (%d, %v), System.Predict = (%d, %v)", gotLabel, gotProba, wantLabel, wantProba)
		}
	}

	// Batch processing with quarantine: a clean dataset quarantines nothing
	// and the processed records predict identically.
	recs, recErrs, err := sys.ProcessAllContext(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(recErrs) != 0 {
		t.Fatalf("quarantined = %+v, want none", recErrs)
	}
	want := sys.PredictAll(test)
	for i, rec := range recs {
		if got, _ := sys.PredictRecord(rec); got != want[i] {
			t.Fatalf("record %d: PredictRecord = %d, PredictAll = %d", i, got, want[i])
		}
	}
}
