package wym

import (
	"encoding/json"
	"os"
	"testing"

	"wym/internal/eval"
	"wym/internal/nn"
	"wym/internal/relevance"
)

// scenarioFloors mirrors testdata/scenario_floors.json: the pinned
// generation parameters and the per-scenario expected-quality floors
// (see the _doc field there for the tolerance rationale).
type scenarioFloors struct {
	Pairs     int   `json:"pairs"`
	Seed      int64 `json:"seed"`
	Scenarios map[string]struct {
		FloorF1    float64 `json:"floor_f1"`
		MeasuredF1 float64 `json:"measured_f1"`
	} `json:"scenarios"`
}

// TestScenarioQualityGates is the scenario-pack regression gate: each
// pack is generated with the committed (pairs, seed), trained with the
// reduced deterministic config, and its test F1 must not fall below the
// committed floor. The run is fully deterministic, so a failure means a
// code change shifted matching quality under that distribution — not
// noise.
func TestScenarioQualityGates(t *testing.T) {
	raw, err := os.ReadFile("testdata/scenario_floors.json")
	if err != nil {
		t.Fatal(err)
	}
	var floors scenarioFloors
	if err := json.Unmarshal(raw, &floors); err != nil {
		t.Fatal(err)
	}
	keys := ScenarioKeys()
	if len(floors.Scenarios) != len(keys) {
		t.Fatalf("floors file covers %d scenarios, packs define %d", len(floors.Scenarios), len(keys))
	}
	for _, key := range keys {
		key := key
		gate, ok := floors.Scenarios[key]
		if !ok {
			t.Fatalf("no committed floor for scenario %q", key)
		}
		t.Run(key, func(t *testing.T) {
			d, err := GenerateScenario(key, floors.Pairs, floors.Seed)
			if err != nil {
				t.Fatal(err)
			}
			var train, valid, test *Dataset
			if key == "drift-temporal" {
				// Temporal split: train on the pre-drift prefix, test on
				// the drifted tail. Shuffling here would hide the shift
				// the pack exists to measure.
				n := len(d.Pairs)
				slice := func(lo, hi int) *Dataset {
					return &Dataset{Name: d.Name, Schema: d.Schema, Pairs: d.Pairs[lo:hi]}
				}
				train, valid, test = slice(0, n*6/10), slice(n*6/10, n*8/10), slice(n*8/10, n)
			} else {
				train, valid, test = d.MustSplit(0.6, 0.2, 1)
			}
			cfg := DefaultConfig()
			cfg.ScorerNN = relevance.NNConfig{
				Hidden: []int{16},
				Train:  nn.Config{Epochs: 8, BatchSize: 32, LR: 1e-3, Seed: 1},
				Seed:   1,
			}
			sys, err := Train(train, valid, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := eval.NewConfusion(sys.PredictAll(test), test.Labels())
			t.Logf("%s: F1=%.4f (floor %.2f, last measured %.4f, classifier %s)",
				key, c.F1(), gate.FloorF1, gate.MeasuredF1, sys.ModelName())
			if c.F1() < gate.FloorF1 {
				t.Errorf("%s: test F1 %.4f fell below the committed floor %.2f (last measured %.4f) — "+
					"see testdata/scenario_floors.json before adjusting",
					key, c.F1(), gate.FloorF1, gate.MeasuredF1)
			}
		})
	}
}
